// libdaos equivalent: the client-side API the paper's interface stack builds
// on. A DaosClient lives on one client node; it talks to the pool service
// (container metadata, OID allocation) and directly to engines for object
// I/O, placing shards algorithmically from the pool map.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "client/object_class.hpp"
#include "client/placement.hpp"
#include "engine/proto.hpp"
#include "net/rpc.hpp"
#include "pool/pool_map.hpp"
#include "sim/sync.hpp"
#include "telemetry/telemetry.hpp"

namespace daosim::client {

class TxHandle;

/// Bounded asynchronous operation queue (the daos_event/EQ model): launch
/// operations without blocking, then await completion of all of them.
class EventQueue {
 public:
  /// @param max_inflight 0 = unbounded
  EventQueue(sim::Scheduler& s, std::size_t max_inflight = 0)
      : sched_(s), wg_(s), slots_(max_inflight > 0
                                      ? std::make_unique<sim::Semaphore>(s, max_inflight)
                                      : nullptr) {}

  /// Launches `op`; suspends only while the queue is at max_inflight.
  sim::CoTask<void> launch(sim::CoTask<void> op) {
    if (slots_ != nullptr) co_await slots_->acquire();
    // Hoisted into a named local: GCC 12 miscompiles coroutine temporaries
    // passed directly into another coroutine's by-value parameter.
    sim::CoTask<void> wrapped = run(std::move(op));
    wg_.spawn(std::move(wrapped));
  }

  /// Callable overload keeping the closure alive (see Scheduler::spawn).
  template <typename F>
    requires requires(F f) {
      { f() } -> std::same_as<sim::CoTask<void>>;
    }
  sim::CoTask<void> launch(F f) {
    return launch(invoke_holding(std::move(f)));
  }

  /// Completes when every launched operation has finished.
  auto wait_all() { return wg_.wait(); }
  std::size_t inflight() const { return wg_.pending(); }

 private:
  template <typename F>
  static sim::CoTask<void> invoke_holding(F f) {
    co_await f();
  }

  sim::CoTask<void> run(sim::CoTask<void> op) {
    co_await std::move(op);
    if (slots_ != nullptr) slots_->release();
  }
  sim::Scheduler& sched_;
  sim::WaitGroup wg_;
  std::unique_ptr<sim::Semaphore> slots_;
};

struct ContInfo {
  vos::Uuid uuid;
  pool::ContProps props;
};

/// Client-side I/O tuning knobs.
struct ClientConfig {
  /// Upper bound on extents coalesced into one batched ObjUpdate/ObjFetch
  /// RPC by ArrayObject::write/read (the sgl/iod vector length). 1 disables
  /// batching — one RPC per chunk piece per replica, the pre-vectorized
  /// behaviour, kept for A/B runs.
  std::uint32_t max_batch_extents = 16;
  /// Client-wide credit window on batched object RPCs: every
  /// ArrayObject::write/read on this client draws from one shared semaphore,
  /// so the node's total in-flight object I/O stays under the endpoint's
  /// hard in-flight cap (which rejects with Errno::busy instead of queueing)
  /// no matter how many concurrent calls — ranks x eq_depth under IOR — the
  /// node runs. Also bounds the coroutine fan-out of a single many-extent
  /// call (small chunk sizes, max_batch_extents=1).
  std::uint32_t max_inflight_rpcs = 32;
  /// Causal-trace sampling: 1 in trace_sample client-level ops becomes a
  /// trace root (1 = every op, 0 = none). The decision hashes
  /// (trace_seed, node, op sequence) so it is deterministic and per-op
  /// independent; unsampled ops still bump the op sequence and span-id
  /// counter, so changing the rate never perturbs ids, timings or
  /// trace_hash().
  std::uint64_t trace_sample = 1;
  std::uint64_t trace_seed = 0;
};

/// Client-side RPC resilience policy: every RPC gets a per-attempt reply
/// deadline and a bounded number of retries separated by deterministic
/// exponential backoff. All durations are virtual time, so the resulting
/// retry pattern is bit-reproducible.
///
/// The default deadline is deliberately generous (cf. CaRT's 60s RPC
/// timeout): it must sit well above worst-case *legitimate* queueing — a
/// single-shard (S1) object at 256 ranks funnels every transfer through one
/// target, where the tail request waits >1s of virtual time. Unreachable
/// engines don't need the deadline at all: each attempt fails after
/// net::kRpcTimeout, so eviction latency is governed by that, not by this.
/// Tests that want aggressive duplicate-apply behaviour shrink the deadline
/// via set_retry_policy.
struct RetryPolicy {
  int max_attempts = 4;                      // total attempts (first + retries)
  sim::Time deadline = 5 * sim::kSec;        // per-attempt reply deadline
  sim::Time backoff_base = 20 * sim::kMs;    // delay before the first retry
  sim::Time backoff_cap = 500 * sim::kMs;    // backoff growth ceiling
};

/// Backoff inserted before retry attempt `attempt` (1-based: the delay
/// between attempt N and attempt N+1 is retry_backoff(policy, N)):
/// base, 2*base, 4*base, ... capped at backoff_cap.
constexpr sim::Time retry_backoff(const RetryPolicy& p, int attempt) {
  sim::Time d = p.backoff_base;
  for (int i = 1; i < attempt && d < p.backoff_cap; ++i) d *= 2;
  return d < p.backoff_cap ? d : p.backoff_cap;
}

class DaosClient {
 public:
  /// @param node          this client's fabric node
  /// @param map           the pool map obtained at pool connect
  /// @param svc_replicas  engines hosting the pool service (Raft group)
  DaosClient(net::RpcDomain& domain, net::NodeId node, pool::PoolMap map,
             std::vector<net::NodeId> svc_replicas, ClientConfig cfg = {});

  net::RpcEndpoint& endpoint() { return ep_; }
  sim::Scheduler& scheduler() { return sched_; }
  const pool::PoolMap& pool_map() const { return map_; }

  const RetryPolicy& retry_policy() const { return retry_; }
  void set_retry_policy(RetryPolicy p) { retry_ = p; }

  const ClientConfig& config() const { return cfg_; }
  /// Must not be called with object I/O in flight: the RPC credit semaphore
  /// is rebuilt to the new window size.
  void set_config(ClientConfig cfg) {
    DAOSIM_REQUIRE(cfg.max_batch_extents >= 1, "max_batch_extents must be >= 1");
    DAOSIM_REQUIRE(cfg.max_inflight_rpcs >= 1, "max_inflight_rpcs must be >= 1");
    cfg_ = cfg;
    rpc_credits_ = std::make_unique<sim::Semaphore>(sched_, cfg_.max_inflight_rpcs);
  }

  /// The client-wide object-RPC credit window (see
  /// ClientConfig::max_inflight_rpcs). Batched update/fetch paths hold one
  /// credit for the duration of each call_target.
  sim::Semaphore& rpc_credits() { return *rpc_credits_; }

  // --- pool service operations ---
  sim::CoTask<Result<ContInfo>> cont_create(vos::Uuid uuid, pool::ContProps props);
  sim::CoTask<Result<ContInfo>> cont_open(vos::Uuid uuid);
  sim::CoTask<Result<void>> cont_destroy(vos::Uuid uuid);
  /// Allocates a contiguous range of object sequence numbers; returns base.
  sim::CoTask<Result<std::uint64_t>> alloc_oids(vos::Uuid cont, std::uint64_t count);

  // --- distributed transactions & snapshots (client/tx.cpp) ---

  /// Opens a transaction on `cont`. Writes staged through the handle become
  /// visible atomically at commit; see TxHandle. Every handle must be closed
  /// with a co_await'ed commit() or abort() (enforced by the tx-unresolved
  /// lint rule).
  TxHandle tx_begin(vos::Uuid cont);

  /// Runs `body` inside a transaction, committing afterwards and restarting
  /// from scratch (fresh handle, fresh epoch, deterministic backoff) on
  /// Errno::tx_restart conflicts or stale placements, up to `max_restarts`.
  sim::CoTask<Errno> run_tx(vos::Uuid cont, std::function<sim::CoTask<Errno>(TxHandle&)> body,
                            int max_restarts = 8);

  /// Allocates a fresh client HLC epoch: vos::hlc_client(now) bumped past
  /// every epoch this client handed out before, so one client's transactions
  /// and snapshots are strictly ordered.
  vos::Epoch tx_alloc_epoch();

  /// Registers a snapshot of `cont` at a fresh HLC epoch and returns that
  /// epoch. Reads at it (KvObject::get / ArrayObject::read epoch parameter)
  /// see the committed state as of the cut; aggregation stays below the
  /// lowest registered snapshot until snapshot_destroy unpins it.
  sim::CoTask<Result<vos::Epoch>> snapshot_create(vos::Uuid cont);
  sim::CoTask<Result<void>> snapshot_destroy(vos::Uuid cont, vos::Epoch epoch);
  /// Registered snapshot epochs, ascending.
  sim::CoTask<Result<std::vector<vos::Epoch>>> list_snapshots(vos::Uuid cont);
  /// Fans epoch aggregation over every UP target of the pool, with `upto`
  /// clamped below the container's lowest snapshot (engines additionally
  /// clamp below their oldest prepared transaction).
  sim::CoTask<Result<void>> cont_aggregate(vos::Uuid cont, vos::Epoch upto = vos::kEpochMax);

  // --- resilient RPC (the only sanctioned path to RpcEndpoint::call) ---

  /// One RPC attempt racing a reply deadline. On expiry the attempt is
  /// abandoned (the in-flight call still completes against the server — the
  /// duplicate-apply window real retries face) and Errno::timed_out returns.
  /// `ctx` links the attempt into the caller's trace tree (see call_target).
  sim::CoTask<net::Reply> call_with_deadline(net::NodeId dst, std::uint16_t opcode,
                                             net::Body body, std::uint64_t wire_bytes,
                                             sim::Time deadline, sim::TraceContext ctx = {});

  /// Bounded retry with deterministic exponential backoff: retries on
  /// timed_out/busy up to the policy's attempt budget, then surfaces the
  /// final status. Backoff waits are recorded as "retry" child spans of
  /// `ctx`, so traced ops show retry storms explicitly.
  sim::CoTask<net::Reply> call_retry(net::NodeId dst, std::uint16_t opcode, net::Body body,
                                     std::uint64_t wire_bytes, sim::TraceContext ctx = {});

  /// Object RPC to a pool-map target. Targets this client already knows are
  /// EXCLUDED fail fast with Errno::stale; a target that exhausts its retry
  /// budget is reported to the pool service for eviction, the local map is
  /// refreshed, and Errno::stale tells the caller to re-place.
  sim::CoTask<net::Reply> call_target(std::uint32_t map_target, std::uint16_t opcode,
                                      net::Body body, std::uint64_t wire_bytes,
                                      sim::TraceContext ctx = {});

  /// Samples the next client-level op into a trace: bumps the op sequence
  /// and allocates a root span id unconditionally (both pure counters), then
  /// returns an active root context for 1-in-trace_sample ops and an
  /// inactive one otherwise. Object handles use this via OpTrace.
  sim::TraceContext sample_op_trace();

  /// Re-fetches pool-map health state from the pool service with a point
  /// query and applies it to the local map if the version advanced. The slow
  /// path: the IV piggyback (call_target noticing a newer version stamped on
  /// a reply) fetches version deltas from an engine instead, and only falls
  /// back here when no engine can serve them. Defined in client/refresh.cpp —
  /// the only module allowed to issue the raw leader query (enforced by the
  /// direct-map-query lint rule).
  sim::CoTask<Result<void>> refresh_pool_map();

  /// Admin reintegration (the `dmg pool reintegrate` equivalent): clears the
  /// engine's EXCLUDED state through the pool service and refreshes the local
  /// map. Restarting an engine does NOT reintegrate it — this call does.
  sim::CoTask<Result<void>> pool_reint(net::NodeId engine);

  /// Records a whole-redundancy-group loss surfaced by a degraded read: every
  /// nominal replica of the group is EXCLUDED. The message names the object
  /// and group so data loss is never silent.
  void note_data_loss(vos::ObjId oid, std::uint32_t group);

  std::uint64_t rpcs_sent() const { return ep_.calls_made(); }
  std::uint64_t evictions_reported() const { return evictions_; }
  std::uint64_t map_refreshes() const { return map_refreshes_; }
  std::uint64_t map_delta_fetches() const { return map_delta_fetches_; }
  std::uint64_t map_full_fetches() const { return map_full_fetches_; }
  std::uint64_t map_staleness_detected() const { return map_staleness_detected_; }
  std::uint64_t data_loss_events() const { return data_loss_; }
  const std::string& last_data_loss() const { return last_data_loss_; }

  /// This client's metric tree ("client/<node>"): per-opcode RPC metrics from
  /// the endpoint plus retry/backoff, eviction, map-refresh, degraded-read
  /// and data-loss counters.
  telemetry::Registry& telemetry() { return metrics_; }
  const telemetry::Registry& telemetry() const { return metrics_; }

  /// Counts a read that had to fall back past a failed/unreachable replica
  /// (called by the object handles' degraded-read loops).
  void note_degraded_read() { degraded_reads_->inc(); }

  /// Transaction outcome accounting (called by TxHandle / run_tx).
  void note_tx_commit(sim::Time duration) {
    tx_commits_->inc();
    tx_commit_time_->record(duration);
  }
  void note_tx_abort() { tx_aborts_->inc(); }
  void note_tx_restart() { tx_restarts_->inc(); }
  std::uint64_t tx_commits() const { return tx_commits_->value(); }
  std::uint64_t tx_aborts() const { return tx_aborts_->value(); }
  std::uint64_t tx_restarts() const { return tx_restarts_->value(); }

  /// Records one batched object RPC carrying `extents` descriptors:
  /// batch/extents_coalesced counts extents that shared an RPC with at least
  /// one other, batch/rpcs_saved the RPCs batching avoided sending.
  void note_batch(std::size_t extents) {
    if (extents > 1) {
      batch_extents_coalesced_->inc(extents);
      batch_rpcs_saved_->inc(extents - 1);
    }
  }

 private:
  struct PendingCall;

  sim::CoTask<Result<std::string>> svc_command(std::string cmd);
  static sim::CoTask<void> run_call(net::RpcEndpoint* ep, net::NodeId dst, std::uint16_t opcode,
                                    net::Body body, std::uint64_t wire_bytes,
                                    sim::TraceContext ctx, std::shared_ptr<PendingCall> st);
  sim::CoTask<void> report_engine_failure(net::NodeId engine);

  // --- IV map refresh (client/refresh.cpp) ---

  /// Piggyback staleness reaction: pulls the pool map forward to at least
  /// `version` by fetching version deltas (kOpMapFetch) from `source` — the
  /// engine whose reply revealed the staleness — falling back to the full
  /// point query when the engine can't serve deltas. Single-flight: while one
  /// refresh is in flight, concurrent triggers wait on its gate instead of
  /// issuing their own fetch.
  sim::CoTask<void> refresh_to_version(std::uint32_t version, net::NodeId source);
  /// Applies a fetched delta suffix to the local map (health flips per
  /// entry), then advances map_.version to `latest`.
  void apply_map_deltas(std::uint32_t latest, const std::vector<engine::MapDeltaEntry>& deltas);

  net::RpcEndpoint ep_;
  sim::Scheduler& sched_;
  pool::PoolMap map_;
  std::vector<net::NodeId> svc_replicas_;
  std::optional<net::NodeId> cached_leader_;
  RetryPolicy retry_;
  ClientConfig cfg_;
  std::unique_ptr<sim::Semaphore> rpc_credits_;
  telemetry::Registry metrics_;
  telemetry::Counter* retry_attempts_ = nullptr;
  telemetry::Counter* retry_backoff_ns_ = nullptr;
  telemetry::Counter* degraded_reads_ = nullptr;
  telemetry::Counter* batch_extents_coalesced_ = nullptr;
  telemetry::Counter* batch_rpcs_saved_ = nullptr;
  telemetry::Counter* tx_commits_ = nullptr;
  telemetry::Counter* tx_aborts_ = nullptr;
  telemetry::Counter* tx_restarts_ = nullptr;
  telemetry::DurationHistogram* tx_commit_time_ = nullptr;
  std::uint64_t tx_seq_ = 0;         // per-client transaction sequence
  vos::Epoch tx_last_epoch_ = 0;     // last HLC epoch handed out
  std::uint64_t trace_op_seq_ = 0;   // client-level op counter for trace sampling
  /// Coalesces concurrent failure reports per engine: the first caller runs
  /// the eviction, later callers wait on its gate. std::map: iteration order
  /// must never depend on addresses (determinism).
  std::map<net::NodeId, std::shared_ptr<sim::Event>> evict_gates_;
  /// Single-flight gate for refresh_to_version (same idiom as evict_gates_,
  /// but one gate: the map is client-global, so any in-flight refresh serves
  /// every concurrent staleness trigger).
  std::shared_ptr<sim::Event> refresh_gate_;
  std::uint64_t evictions_ = 0;
  std::uint64_t data_loss_ = 0;
  std::uint64_t map_refreshes_ = 0;
  /// IV accounting (exported as map/delta_fetches, map/full_fetches,
  /// map/piggyback_staleness_detected — see docs/membership.md).
  std::uint64_t map_delta_fetches_ = 0;
  std::uint64_t map_full_fetches_ = 0;
  std::uint64_t map_staleness_detected_ = 0;
  std::string last_data_loss_;
};

/// RAII root-span guard for one client-level operation (a KvObject put, an
/// ArrayObject write, ...). Construction draws the sampling decision from
/// DaosClient::sample_op_trace; destruction — at the coroutine frame's
/// co_return, i.e. the op's virtual completion time — emits the "op" span.
/// Everything the op does derives child contexts from ctx(); when the op was
/// not sampled, ctx() is inactive and the whole subtree stays unsampled.
class OpTrace {
 public:
  OpTrace(DaosClient& client, const char* name)
      : client_(client), name_(name), begin_(client.scheduler().now()),
        ctx_(client.sample_op_trace()) {}
  ~OpTrace() {
    if (sim::SpanSink* sink = client_.scheduler().span_sink()) {
      sink->span("op", name_, client_.endpoint().node(), 0, begin_,
                 client_.scheduler().now(), ctx_);
    }
  }
  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

  const sim::TraceContext& ctx() const { return ctx_; }

 private:
  DaosClient& client_;
  const char* name_;  // static label: no formatting unless a sink is attached
  sim::Time begin_;
  sim::TraceContext ctx_;
};

/// KV-style object handle (DAOS "multi-level KV" API): dkey -> akey -> value.
/// Replicated classes (RP_*) fan puts to every replica of the dkey's
/// redundancy group and serve degraded gets from any UP replica; a get whose
/// group lost every nominal replica fails with Errno::data_loss.
class KvObject {
 public:
  KvObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid);

  /// With `excl`, fails with Errno::exists when the dkey already holds a
  /// visible record (DAOS conditional insert).
  sim::CoTask<Errno> put(const vos::Key& dkey, const vos::Key& akey,
                         std::span<const std::byte> value, bool excl = false);
  /// `epoch` bounds visibility (read-at-snapshot): only records committed at
  /// or below it are seen. Default = present state.
  sim::CoTask<Result<std::vector<std::byte>>> get(const vos::Key& dkey, const vos::Key& akey,
                                                  vos::Epoch epoch = vos::kEpochMax);
  sim::CoTask<Result<std::vector<vos::Key>>> list_dkeys();
  sim::CoTask<Errno> punch();
  sim::CoTask<Errno> punch_dkey(const vos::Key& dkey);

  vos::ObjId oid() const { return oid_; }

 private:
  std::uint32_t group_of(const vos::Key& dkey) const;
  bool group_lost(std::uint32_t group) const;
  /// Recomputes the layout when the client's pool map moved past the version
  /// this handle last placed against (refresh-on-stale).
  void refresh_layout();

  DaosClient& client_;
  vos::Uuid cont_;
  vos::ObjId oid_;
  GroupLayout layout_;   // health-aware: where I/O goes right now
  GroupLayout nominal_;  // intact-pool placement: which replicas exist at all
  std::uint32_t map_version_ = 0;
};

/// Byte-array object handle (the DAOS array API): a flat address space
/// chunked into dkeys and striped over the object's shards.
class ArrayObject {
 public:
  ArrayObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid, std::uint64_t chunk_size);

  /// Writes `length` logical bytes at `offset`. `data` must be either
  /// length bytes or empty (metadata-only mode for large benchmarks).
  sim::CoTask<Errno> write(std::uint64_t offset, std::uint64_t length,
                           std::span<const std::byte> data);
  /// Reads into `out`; returns bytes overlapping written data. `epoch`
  /// bounds visibility (read-at-snapshot); default = present state.
  sim::CoTask<Result<std::uint64_t>> read(std::uint64_t offset, std::span<std::byte> out,
                                          vos::Epoch epoch = vos::kEpochMax);
  /// Array size = high-water mark of all completed writes.
  sim::CoTask<Result<std::uint64_t>> size();
  sim::CoTask<Errno> punch();

  vos::ObjId oid() const { return oid_; }
  std::uint64_t chunk_size() const { return chunk_; }
  std::uint32_t shard_count() const { return std::uint32_t(layout_.size()); }

 private:
  std::uint32_t group_of_chunk(std::uint64_t chunk_idx) const {
    return array_chunk_group(oid_, chunk_idx, layout_.groups());
  }
  bool group_lost(std::uint32_t group) const;
  /// See KvObject::refresh_layout.
  void refresh_layout();

  /// One chunk piece of a write/read call: a dkey-relative byte range plus
  /// its offset into the caller's buffer. Pieces are grouped by
  /// (map_target, replica) into batched RPCs per placement round.
  struct Piece {
    std::uint64_t chunk_idx = 0;
    std::uint64_t offset = 0;       // offset within the chunk (dkey)
    std::uint64_t length = 0;
    std::uint64_t buffer_off = 0;   // offset into the caller's data/out span
  };
  /// Per-piece degraded-read bookkeeping (see ArrayObject::read).
  struct ReadProgress {
    std::uint32_t attempt = 0;  // replica attempts consumed (0..nreps)
    int stale_rounds = 0;       // re-placement rounds burned on the current replica
    bool done = false;          // best answer covers the piece
    bool have_best = false;
    bool all_answered = true;
    std::uint64_t best_filled = 0;
    Errno last = Errno::io;
  };
  std::vector<Piece> split_pieces(std::uint64_t offset, std::uint64_t length) const;

  // Per-batch coroutines (explicit parameters; see CP.51 note in
  // scheduler.hpp): each sends ONE batched RPC to one resolved target and
  // parks the reply for the caller's round barrier, which owns stale
  // re-placement and degraded-read fallback per piece.
  sim::CoTask<void> update_batch(std::uint32_t map_target, engine::ObjUpdateReq req,
                                 std::uint64_t wire, sim::TraceContext ctx,
                                 std::shared_ptr<Errno> out);
  sim::CoTask<void> fetch_batch(std::uint32_t map_target, engine::ObjFetchReq req,
                                sim::TraceContext ctx, std::shared_ptr<net::Reply> out);
  sim::CoTask<void> query_piece(std::uint32_t shard, engine::ObjQueryReq req,
                                sim::TraceContext ctx, std::shared_ptr<Errno> status,
                                std::shared_ptr<std::uint64_t> max_end);

  DaosClient& client_;
  vos::Uuid cont_;
  vos::ObjId oid_;
  std::uint64_t chunk_;
  GroupLayout layout_;   // health-aware: where I/O goes right now
  GroupLayout nominal_;  // intact-pool placement: which replicas exist at all
  std::uint32_t map_version_ = 0;
};

}  // namespace daosim::client
