#include "client/client.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace daosim::client {

using engine::ObjEnumReq;
using engine::ObjEnumResp;
using engine::ObjFetchReq;
using engine::ObjFetchResp;
using engine::ObjPunchReq;
using engine::ObjQueryReq;
using engine::ObjQueryResp;
using engine::ObjUpdateReq;
using engine::PunchScope;
using engine::RecordType;
using net::Body;
using net::Reply;

namespace {
constexpr std::uint64_t kSvcMsgBytes = 128;
constexpr int kSvcMaxRetries = 16;
constexpr sim::Time kSvcRetryDelay = 20 * sim::kMs;

std::uint64_t key_hash(const vos::Key& k) {
  return std::hash<std::string>{}(k);
}
}  // namespace

DaosClient::DaosClient(net::RpcDomain& domain, net::NodeId node, pool::PoolMap map,
                       std::vector<net::NodeId> svc_replicas)
    : ep_(domain, node),
      sched_(domain.scheduler()),
      map_(std::move(map)),
      svc_replicas_(std::move(svc_replicas)) {
  DAOSIM_REQUIRE(!svc_replicas_.empty(), "no pool service replicas");
  DAOSIM_REQUIRE(map_.target_count() > 0, "empty pool map");
}

sim::CoTask<Result<std::string>> DaosClient::svc_command(std::string cmd) {
  std::size_t rr = 0;
  for (int attempt = 0; attempt < kSvcMaxRetries; ++attempt) {
    const net::NodeId dst =
        cached_leader_.value_or(svc_replicas_[rr++ % svc_replicas_.size()]);
    // Hoisted out of the co_await expression: GCC 12 miscompiles non-trivial
    // temporaries nested in co_await argument lists (double destruction).
    engine::PoolSvcReq preq{cmd};
    Body body = Body::make(std::move(preq));
    Reply r = co_await ep_.call(dst, engine::kOpPoolSvc, std::move(body),
                                kSvcMsgBytes + cmd.size());
    if (r.status == Errno::ok) {
      cached_leader_ = dst;
      co_return r.body.get<engine::PoolSvcResp>().response;
    }
    cached_leader_.reset();
    if (r.status == Errno::again && r.body.has_value()) {
      cached_leader_ = r.body.get<engine::PoolSvcResp>().leader_hint;
    }
    co_await sched_.delay(kSvcRetryDelay);
  }
  co_return Errno::timed_out;
}

sim::CoTask<Result<ContInfo>> DaosClient::cont_create(vos::Uuid uuid, pool::ContProps props) {
  auto res = co_await svc_command(strfmt("cont_create %llu %llu %llu %u",
                                         static_cast<unsigned long long>(uuid.hi), static_cast<unsigned long long>(uuid.lo),
                                         static_cast<unsigned long long>(props.chunk_size),
                                         unsigned(props.oclass)));
  if (!res.ok()) co_return res.error();
  if (*res == "EEXIST") co_return Errno::exists;
  if (*res != "ok") co_return Errno::io;
  co_return ContInfo{uuid, props};
}

sim::CoTask<Result<ContInfo>> DaosClient::cont_open(vos::Uuid uuid) {
  auto res = co_await svc_command(
      strfmt("cont_open %llu %llu", static_cast<unsigned long long>(uuid.hi), static_cast<unsigned long long>(uuid.lo)));
  if (!res.ok()) co_return res.error();
  std::istringstream is(*res);
  std::string status;
  is >> status;
  if (status == "ENOENT") co_return Errno::no_entry;
  if (status != "ok") co_return Errno::io;
  ContInfo info{uuid, {}};
  unsigned oclass = 0;
  is >> info.props.chunk_size >> oclass;
  info.props.oclass = std::uint8_t(oclass);
  co_return info;
}

sim::CoTask<Result<void>> DaosClient::cont_destroy(vos::Uuid uuid) {
  auto res = co_await svc_command(
      strfmt("cont_destroy %llu %llu", static_cast<unsigned long long>(uuid.hi), static_cast<unsigned long long>(uuid.lo)));
  if (!res.ok()) co_return res.error();
  if (*res == "ENOENT") co_return Errno::no_entry;
  co_return Result<void>{};
}

sim::CoTask<Result<std::uint64_t>> DaosClient::alloc_oids(vos::Uuid cont, std::uint64_t count) {
  auto res = co_await svc_command(strfmt("alloc_oids %llu %llu %llu",
                                         static_cast<unsigned long long>(cont.hi), static_cast<unsigned long long>(cont.lo),
                                         static_cast<unsigned long long>(count)));
  if (!res.ok()) co_return res.error();
  std::istringstream is(*res);
  std::string status;
  std::uint64_t base = 0;
  is >> status >> base;
  if (status != "ok") co_return Errno::no_entry;
  co_return base;
}

sim::CoTask<net::Reply> DaosClient::call_target(std::uint32_t map_target, std::uint16_t opcode,
                                                net::Body body, std::uint64_t wire_bytes) {
  DAOSIM_REQUIRE(map_target < map_.target_count(), "target %u outside pool map", map_target);
  const auto& ref = map_.targets[map_target];
  return ep_.call(ref.engine, opcode, std::move(body), wire_bytes);
}

// ---------------------------------------------------------------------------
// KvObject

KvObject::KvObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid)
    : client_(client), cont_(cont), oid_(oid) {
  const auto cls = class_of(oid);
  layout_ = compute_layout(oid, client::shard_count(cls, client.pool_map().target_count()),
                           client.pool_map().target_count());
}

std::uint32_t KvObject::shard_of(const vos::Key& dkey) const {
  return dkey_to_shard(key_hash(dkey), std::uint32_t(layout_.size()));
}

sim::CoTask<Errno> KvObject::put(const vos::Key& dkey, const vos::Key& akey,
                                 std::span<const std::byte> value, bool excl) {
  ObjUpdateReq req;
  req.cont = cont_;
  req.oid = oid_;
  const std::uint32_t map_target = layout_[shard_of(dkey)];
  req.target = client_.pool_map().targets[map_target].target;
  req.dkey = dkey;
  req.akey = akey;
  req.type = RecordType::single_value;
  req.cond_insert = excl;
  req.length = value.size();
  req.data = std::make_shared<std::vector<std::byte>>(value.begin(), value.end());
  Reply r = co_await client_.call_target(map_target, engine::kOpObjUpdate, Body::make(std::move(req)),
                                         engine::kObjRpcHeader + value.size());
  co_return r.status;
}

sim::CoTask<Result<std::vector<std::byte>>> KvObject::get(const vos::Key& dkey,
                                                          const vos::Key& akey) {
  ObjFetchReq req;
  req.cont = cont_;
  req.oid = oid_;
  const std::uint32_t map_target = layout_[shard_of(dkey)];
  req.target = client_.pool_map().targets[map_target].target;
  req.dkey = dkey;
  req.akey = akey;
  req.type = RecordType::single_value;
  Reply r = co_await client_.call_target(map_target, engine::kOpObjFetch, Body::make(std::move(req)),
                                         engine::kObjRpcHeader);
  if (r.status != Errno::ok) co_return r.status;
  auto& resp = r.body.get<ObjFetchResp>();
  if (!resp.exists) co_return Errno::no_entry;
  if (resp.data == nullptr) co_return std::vector<std::byte>{};
  co_return std::move(*resp.data);
}

sim::CoTask<Result<std::vector<vos::Key>>> KvObject::list_dkeys() {
  std::set<vos::Key> merged;
  for (std::uint32_t s = 0; s < layout_.size(); ++s) {
    ObjEnumReq req;
    req.cont = cont_;
    req.oid = oid_;
    const std::uint32_t map_target = layout_[s];
    req.target = client_.pool_map().targets[map_target].target;
    Reply r = co_await client_.call_target(map_target, engine::kOpObjEnumDkeys,
                                           Body::make(std::move(req)), engine::kObjRpcHeader);
    if (r.status != Errno::ok) co_return r.status;
    for (auto& k : r.body.get<ObjEnumResp>().keys) merged.insert(std::move(k));
  }
  co_return std::vector<vos::Key>(merged.begin(), merged.end());
}

sim::CoTask<Errno> KvObject::punch() {
  std::set<std::uint32_t> touched(layout_.begin(), layout_.end());
  Errno status = Errno::ok;
  for (std::uint32_t map_target : touched) {
    ObjPunchReq req;
    req.cont = cont_;
    req.oid = oid_;
    req.target = client_.pool_map().targets[map_target].target;
    req.scope = PunchScope::object;
    Reply r = co_await client_.call_target(map_target, engine::kOpObjPunch,
                                           Body::make(std::move(req)), engine::kObjRpcHeader);
    if (r.status != Errno::ok) status = r.status;
  }
  co_return status;
}

sim::CoTask<Errno> KvObject::punch_dkey(const vos::Key& dkey) {
  ObjPunchReq req;
  req.cont = cont_;
  req.oid = oid_;
  const std::uint32_t map_target = layout_[shard_of(dkey)];
  req.target = client_.pool_map().targets[map_target].target;
  req.scope = PunchScope::dkey;
  req.dkey = dkey;
  Reply r = co_await client_.call_target(map_target, engine::kOpObjPunch,
                                         Body::make(std::move(req)), engine::kObjRpcHeader);
  co_return r.status;
}

// ---------------------------------------------------------------------------
// ArrayObject

ArrayObject::ArrayObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid,
                         std::uint64_t chunk_size)
    : client_(client), cont_(cont), oid_(oid), chunk_(chunk_size) {
  DAOSIM_REQUIRE(chunk_ > 0, "chunk size must be positive");
  const auto cls = class_of(oid);
  layout_ = compute_layout(oid, client::shard_count(cls, client.pool_map().target_count()),
                           client.pool_map().target_count());
}

sim::CoTask<Errno> ArrayObject::write(std::uint64_t offset, std::uint64_t length,
                                      std::span<const std::byte> data) {
  DAOSIM_REQUIRE(data.empty() || data.size() == length, "payload size mismatch");
  if (length == 0) co_return Errno::ok;
  auto status = std::make_shared<Errno>(Errno::ok);
  sim::WaitGroup wg(client_.scheduler());
  const std::uint64_t global_end = offset + length;

  std::uint64_t pos = offset;
  while (pos < global_end) {
    const std::uint64_t chunk_idx = pos / chunk_;
    const std::uint64_t in_chunk = pos % chunk_;
    const std::uint64_t piece = std::min(chunk_ - in_chunk, global_end - pos);

    ObjUpdateReq req;
    req.cont = cont_;
    req.oid = oid_;
    const std::uint32_t map_target = layout_[shard_of_chunk(chunk_idx)];
    req.target = client_.pool_map().targets[map_target].target;
    req.dkey = strfmt("%llu", static_cast<unsigned long long>(chunk_idx));
    req.akey = "0";
    req.type = RecordType::array;
    req.offset = in_chunk;
    req.length = piece;
    req.array_end_hint = global_end;
    if (!data.empty()) {
      auto sub = data.subspan(std::size_t(pos - offset), std::size_t(piece));
      req.data = std::make_shared<std::vector<std::byte>>(sub.begin(), sub.end());
    }
    const std::uint64_t wire = engine::kObjRpcHeader + piece;
    wg.spawn(update_piece(map_target, std::move(req), wire, status));
    pos += piece;
  }
  co_await wg.wait();
  co_return *status;
}

sim::CoTask<Result<std::uint64_t>> ArrayObject::read(std::uint64_t offset,
                                                     std::span<std::byte> out) {
  if (out.empty()) co_return std::uint64_t{0};
  auto status = std::make_shared<Errno>(Errno::ok);
  auto filled = std::make_shared<std::uint64_t>(0);
  sim::WaitGroup wg(client_.scheduler());
  const std::uint64_t end = offset + out.size();

  std::uint64_t pos = offset;
  while (pos < end) {
    const std::uint64_t chunk_idx = pos / chunk_;
    const std::uint64_t in_chunk = pos % chunk_;
    const std::uint64_t piece = std::min(chunk_ - in_chunk, end - pos);

    ObjFetchReq req;
    req.cont = cont_;
    req.oid = oid_;
    const std::uint32_t map_target = layout_[shard_of_chunk(chunk_idx)];
    req.target = client_.pool_map().targets[map_target].target;
    req.dkey = strfmt("%llu", static_cast<unsigned long long>(chunk_idx));
    req.akey = "0";
    req.type = RecordType::array;
    req.offset = in_chunk;
    req.length = piece;
    auto dst = out.subspan(std::size_t(pos - offset), std::size_t(piece));
    wg.spawn(fetch_piece(map_target, std::move(req), dst, status, filled));
    pos += piece;
  }
  co_await wg.wait();
  if (*status != Errno::ok) co_return *status;
  co_return *filled;
}

sim::CoTask<Result<std::uint64_t>> ArrayObject::size() {
  std::set<std::uint32_t> touched(layout_.begin(), layout_.end());
  auto status = std::make_shared<Errno>(Errno::ok);
  auto max_end = std::make_shared<std::uint64_t>(0);
  sim::WaitGroup wg(client_.scheduler());
  for (std::uint32_t map_target : touched) {
    ObjQueryReq req;
    req.cont = cont_;
    req.oid = oid_;
    req.target = client_.pool_map().targets[map_target].target;
    req.kind = engine::QueryKind::array_end_hint;
    wg.spawn(query_piece(map_target, std::move(req), status, max_end));
  }
  co_await wg.wait();
  if (*status != Errno::ok) co_return *status;
  co_return *max_end;
}

sim::CoTask<void> ArrayObject::update_piece(std::uint32_t map_target, engine::ObjUpdateReq req,
                                            std::uint64_t wire, std::shared_ptr<Errno> status) {
  Reply reply = co_await client_.call_target(map_target, engine::kOpObjUpdate,
                                             Body::make(std::move(req)), wire);
  if (reply.status != Errno::ok) *status = reply.status;
}

sim::CoTask<void> ArrayObject::fetch_piece(std::uint32_t map_target, engine::ObjFetchReq req,
                                           std::span<std::byte> dst,
                                           std::shared_ptr<Errno> status,
                                           std::shared_ptr<std::uint64_t> filled) {
  Reply reply = co_await client_.call_target(map_target, engine::kOpObjFetch,
                                             Body::make(std::move(req)), engine::kObjRpcHeader);
  if (reply.status != Errno::ok) {
    *status = reply.status;
    co_return;
  }
  auto& resp = reply.body.get<ObjFetchResp>();
  *filled += resp.filled;
  if (resp.data != nullptr) {
    std::copy(resp.data->begin(), resp.data->end(), dst.begin());
  }
}

sim::CoTask<void> ArrayObject::query_piece(std::uint32_t map_target, engine::ObjQueryReq req,
                                           std::shared_ptr<Errno> status,
                                           std::shared_ptr<std::uint64_t> max_end) {
  Reply reply = co_await client_.call_target(map_target, engine::kOpObjQuery,
                                             Body::make(std::move(req)), engine::kObjRpcHeader);
  if (reply.status != Errno::ok) {
    *status = reply.status;
    co_return;
  }
  *max_end = std::max(*max_end, reply.body.get<ObjQueryResp>().value);
}

sim::CoTask<Errno> ArrayObject::punch() {
  std::set<std::uint32_t> touched(layout_.begin(), layout_.end());
  Errno status = Errno::ok;
  for (std::uint32_t map_target : touched) {
    ObjPunchReq req;
    req.cont = cont_;
    req.oid = oid_;
    req.target = client_.pool_map().targets[map_target].target;
    req.scope = PunchScope::object;
    Reply r = co_await client_.call_target(map_target, engine::kOpObjPunch,
                                           Body::make(std::move(req)), engine::kObjRpcHeader);
    if (r.status != Errno::ok) status = r.status;
  }
  co_return status;
}

}  // namespace daosim::client
