#include "client/client.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace daosim::client {

using engine::ObjEnumReq;
using engine::ObjEnumResp;
using engine::ObjFetchReq;
using engine::ObjFetchResp;
using engine::ObjPunchReq;
using engine::ObjQueryReq;
using engine::ObjQueryResp;
using engine::ObjUpdateReq;
using engine::PunchScope;
using engine::RecordType;
using net::Body;
using net::Reply;

namespace {
constexpr std::uint64_t kSvcMsgBytes = 128;
constexpr int kSvcMaxRetries = 16;
constexpr sim::Time kSvcRetryDelay = 20 * sim::kMs;
/// Bound on re-placement rounds after Errno::stale: each round follows one
/// pool-map refresh, and maps only move forward, so a handful suffices.
constexpr int kMaxPlaceRounds = 3;

// Trace-digest tags for recovery actions (arbitrary distinct constants,
// xor-combined with the affected engine/version).
constexpr std::uint64_t kTraceEvictReport = 0xFA17E001'0000'0000ULL;
// 0xFA17E002 (map refresh) and 0xFA17E014/15 (staleness/delta apply) live in
// client/refresh.cpp.
constexpr std::uint64_t kTraceRefreshFail = 0xFA17E003'0000'0000ULL;
constexpr std::uint64_t kTraceDataLoss = 0xFA17E004'0000'0000ULL;

std::uint64_t key_hash(const vos::Key& k) {
  return std::hash<std::string>{}(k);
}

/// True when every nominal replica of the group sits on an EXCLUDED target:
/// the group's pre-eviction data has no surviving copy.
bool nominal_group_lost(const pool::PoolMap& map, const GroupLayout& nominal, std::uint32_t g) {
  for (std::uint32_t r = 0; r < nominal.replicas; ++r) {
    if (map.targets[nominal.at(g, r)].health != pool::TargetHealth::excluded) return false;
  }
  return true;
}
}  // namespace

DaosClient::DaosClient(net::RpcDomain& domain, net::NodeId node, pool::PoolMap map,
                       std::vector<net::NodeId> svc_replicas, ClientConfig cfg)
    : ep_(domain, node),
      sched_(domain.scheduler()),
      map_(std::move(map)),
      svc_replicas_(std::move(svc_replicas)),
      cfg_(cfg),
      metrics_(strfmt("client/%u", node)) {
  DAOSIM_REQUIRE(!svc_replicas_.empty(), "no pool service replicas");
  DAOSIM_REQUIRE(map_.target_count() > 0, "empty pool map");
  DAOSIM_REQUIRE(cfg_.max_batch_extents >= 1, "max_batch_extents must be >= 1");
  DAOSIM_REQUIRE(cfg_.max_inflight_rpcs >= 1, "max_inflight_rpcs must be >= 1");
  rpc_credits_ = std::make_unique<sim::Semaphore>(sched_, cfg_.max_inflight_rpcs);
  ep_.set_telemetry(&metrics_);
  retry_attempts_ = &metrics_.find_or_create<telemetry::Counter>("retry/attempts");
  retry_backoff_ns_ = &metrics_.find_or_create<telemetry::Counter>("retry/backoff_ns");
  degraded_reads_ = &metrics_.find_or_create<telemetry::Counter>("degraded/reads");
  batch_extents_coalesced_ =
      &metrics_.find_or_create<telemetry::Counter>("batch/extents_coalesced");
  batch_rpcs_saved_ = &metrics_.find_or_create<telemetry::Counter>("batch/rpcs_saved");
  tx_commits_ = &metrics_.find_or_create<telemetry::Counter>("tx/commits");
  tx_aborts_ = &metrics_.find_or_create<telemetry::Counter>("tx/aborts");
  tx_restarts_ = &metrics_.find_or_create<telemetry::Counter>("tx/restarts");
  tx_commit_time_ = &metrics_.find_or_create<telemetry::DurationHistogram>("tx/commit_time_ns");
  metrics_.add_probe("evictions_reported", [this] { return evictions_; });
  metrics_.add_probe("degraded/data_loss", [this] { return data_loss_; });
  metrics_.add_probe("map_refreshes", [this] { return map_refreshes_; });
  metrics_.add_probe("map/delta_fetches", [this] { return map_delta_fetches_; });
  metrics_.add_probe("map/full_fetches", [this] { return map_full_fetches_; });
  metrics_.add_probe("map/piggyback_staleness_detected",
                     [this] { return map_staleness_detected_; });
}

// ---------------------------------------------------------------------------
// Resilient RPC path

struct DaosClient::PendingCall {
  explicit PendingCall(sim::Scheduler& s) : done(s) {}
  sim::Event done;
  net::Reply reply;
};

sim::CoTask<void> DaosClient::run_call(net::RpcEndpoint* ep, net::NodeId dst,
                                       std::uint16_t opcode, net::Body body,
                                       std::uint64_t wire_bytes, sim::TraceContext ctx,
                                       std::shared_ptr<PendingCall> st) {
  st->reply = co_await ep->call(dst, opcode, std::move(body), wire_bytes, ctx);  // daosim-lint: allow(raw-rpc-call): this IS the wrapper; call_with_deadline owns the timeout
  st->done.set();
}

sim::CoTask<net::Reply> DaosClient::call_with_deadline(net::NodeId dst, std::uint16_t opcode,
                                                       net::Body body, std::uint64_t wire_bytes,
                                                       sim::Time deadline,
                                                       sim::TraceContext ctx) {
  auto st = std::make_shared<PendingCall>(sched_);
  // The attempt runs detached so an expired deadline abandons it without
  // cancelling it: the request already left this node, and the server will
  // still execute it — which is why retried updates must be idempotent.
  sim::CoTask<void> runner = run_call(&ep_, dst, opcode, std::move(body), wire_bytes, ctx, st);
  sched_.spawn(std::move(runner));
  const bool replied = co_await st->done.wait_for(deadline);
  if (!replied) co_return net::Reply{Errno::timed_out, 0, {}};
  co_return std::move(st->reply);
}

sim::CoTask<net::Reply> DaosClient::call_retry(net::NodeId dst, std::uint16_t opcode,
                                               net::Body body, std::uint64_t wire_bytes,
                                               sim::TraceContext ctx) {
  Reply r{};
  for (int attempt = 1;; ++attempt) {
    Body attempt_body = body;  // bodies are shared_ptr-held: copies are cheap
    r = co_await call_with_deadline(dst, opcode, std::move(attempt_body), wire_bytes,
                                    retry_.deadline, ctx);
    if (r.status != Errno::timed_out && r.status != Errno::busy) co_return r;
    if (attempt >= retry_.max_attempts) co_return r;
    const sim::Time backoff = retry_backoff(retry_, attempt);
    retry_attempts_->inc();
    retry_backoff_ns_->inc(backoff);
    // Backoff as a "retry" child span: traced ops show the wait between
    // attempts instead of an unexplained gap. Id allocated unconditionally.
    const sim::TraceContext retry_ctx = ctx.child(sched_.alloc_span_id());
    const sim::Time b0 = sched_.now();
    co_await sched_.delay(backoff);
    if (sim::SpanSink* sink = sched_.span_sink()) {
      sink->span("retry", strfmt("backoff after attempt %d ->%u", attempt, dst), ep_.node(),
                 opcode, b0, sched_.now(), retry_ctx);
    }
  }
}

sim::CoTask<net::Reply> DaosClient::call_target(std::uint32_t map_target, std::uint16_t opcode,
                                                net::Body body, std::uint64_t wire_bytes,
                                                sim::TraceContext ctx) {
  DAOSIM_REQUIRE(map_target < map_.target_count(), "target %u outside pool map", map_target);
  const pool::TargetRef ref = map_.targets[map_target];  // copy: map_ may refresh mid-call
  if (ref.health == pool::TargetHealth::excluded) {
    co_return net::Reply{Errno::stale, 0, {}};
  }
  net::Reply r = co_await call_retry(ref.engine, opcode, std::move(body), wire_bytes, ctx);
  if (r.map_version > map_.version) {
    // IV piggyback: the reply is stamped with a newer pool-map version than
    // ours. Pull the missing deltas (single-flight, from the very engine that
    // revealed the staleness) before returning, so the caller re-places
    // against a current map without anyone polling the leader. Timed-out
    // replies carry map_version 0 and never trigger this.
    ++map_staleness_detected_;
    co_await refresh_to_version(r.map_version, ref.engine);
  }
  if (r.status != Errno::timed_out) co_return r;
  // The whole attempt budget burned: suspect the engine (DOWN), report it for
  // eviction, and hand Errno::stale to the caller so it re-places against the
  // refreshed map.
  for (auto& t : map_.targets) {
    if (t.engine == ref.engine && t.health == pool::TargetHealth::up) {
      t.health = pool::TargetHealth::down;
    }
  }
  co_await report_engine_failure(ref.engine);
  co_return net::Reply{Errno::stale, 0, {}};
}

sim::CoTask<void> DaosClient::report_engine_failure(net::NodeId engine) {
  if (auto it = evict_gates_.find(engine); it != evict_gates_.end()) {
    auto gate = it->second;  // keep the Event alive across the wait
    co_await gate->wait();
    co_return;
  }
  auto gate = std::make_shared<sim::Event>(sched_);
  evict_gates_.emplace(engine, gate);
  ++evictions_;
  sched_.trace_note(kTraceEvictReport ^ engine);
  auto evicted = co_await svc_command(strfmt("pool_evict %u", engine));
  if (evicted.ok()) {
    Result<void> refreshed = co_await refresh_pool_map();
    if (!refreshed.ok()) {
      // Targets stay marked DOWN; the next failing call retries the refresh.
      sched_.trace_note(kTraceRefreshFail ^ engine);
    }
  }
  evict_gates_.erase(engine);
  gate->set();
}

sim::TraceContext DaosClient::sample_op_trace() {
  // Both counters bump unconditionally — the op sequence and the span id are
  // pure increments — so the stream of ids (and thus trace JSON and
  // trace_hash) is identical whatever the sampling rate or sink state.
  const std::uint64_t seq = ++trace_op_seq_;
  const std::uint64_t id = sched_.alloc_span_id();
  if (cfg_.trace_sample == 0) return {};
  const std::uint64_t h = mix64(cfg_.trace_seed ^ (std::uint64_t(ep_.node()) << 32) ^ seq);
  if (h % cfg_.trace_sample != 0) return {};
  return sim::TraceContext::root(id);
}

void DaosClient::note_data_loss(vos::ObjId oid, std::uint32_t group) {
  ++data_loss_;
  last_data_loss_ = strfmt("object %llx.%llx group %u: all replicas lost",
                           static_cast<unsigned long long>(oid.hi),
                           static_cast<unsigned long long>(oid.lo), group);
  sched_.trace_note(kTraceDataLoss ^ oid.lo ^ group);
}

// DaosClient::refresh_pool_map / refresh_to_version / apply_map_deltas live
// in client/refresh.cpp — the only client module allowed to issue the raw
// leader map query (direct-map-query lint rule).

sim::CoTask<Result<void>> DaosClient::pool_reint(net::NodeId engine) {
  auto res = co_await svc_command(strfmt("pool_reint %u", engine));
  if (!res.ok()) co_return res.error();
  std::istringstream is(*res);
  std::string status;
  is >> status;
  if (status != "ok") co_return Errno::io;
  co_return co_await refresh_pool_map();
}

sim::CoTask<Result<std::string>> DaosClient::svc_command(std::string cmd) {
  std::size_t rr = 0;
  for (int attempt = 0; attempt < kSvcMaxRetries; ++attempt) {
    const net::NodeId dst =
        cached_leader_.value_or(svc_replicas_[rr++ % svc_replicas_.size()]);
    // Hoisted out of the co_await expression: GCC 12 miscompiles non-trivial
    // temporaries nested in co_await argument lists (double destruction).
    engine::PoolSvcReq preq{cmd};
    Body body = Body::make(std::move(preq));
    Reply r = co_await call_with_deadline(dst, engine::kOpPoolSvc, std::move(body),
                                          kSvcMsgBytes + cmd.size(), retry_.deadline);
    if (r.status == Errno::ok) {
      cached_leader_ = dst;
      co_return r.body.get<engine::PoolSvcResp>().response;
    }
    cached_leader_.reset();
    if (r.status == Errno::again && r.body.has_value()) {
      cached_leader_ = r.body.get<engine::PoolSvcResp>().leader_hint;
    }
    co_await sched_.delay(kSvcRetryDelay);
  }
  co_return Errno::timed_out;
}

// ---------------------------------------------------------------------------
// Pool service operations

sim::CoTask<Result<ContInfo>> DaosClient::cont_create(vos::Uuid uuid, pool::ContProps props) {
  auto res = co_await svc_command(strfmt("cont_create %llu %llu %llu %u",
                                         static_cast<unsigned long long>(uuid.hi), static_cast<unsigned long long>(uuid.lo),
                                         static_cast<unsigned long long>(props.chunk_size),
                                         unsigned(props.oclass)));
  if (!res.ok()) co_return res.error();
  if (*res == "EEXIST") co_return Errno::exists;
  if (*res != "ok") co_return Errno::io;
  co_return ContInfo{uuid, props};
}

sim::CoTask<Result<ContInfo>> DaosClient::cont_open(vos::Uuid uuid) {
  auto res = co_await svc_command(
      strfmt("cont_open %llu %llu", static_cast<unsigned long long>(uuid.hi), static_cast<unsigned long long>(uuid.lo)));
  if (!res.ok()) co_return res.error();
  std::istringstream is(*res);
  std::string status;
  is >> status;
  if (status == "ENOENT") co_return Errno::no_entry;
  if (status != "ok") co_return Errno::io;
  ContInfo info{uuid, {}};
  unsigned oclass = 0;
  is >> info.props.chunk_size >> oclass;
  info.props.oclass = std::uint8_t(oclass);
  co_return info;
}

sim::CoTask<Result<void>> DaosClient::cont_destroy(vos::Uuid uuid) {
  auto res = co_await svc_command(
      strfmt("cont_destroy %llu %llu", static_cast<unsigned long long>(uuid.hi), static_cast<unsigned long long>(uuid.lo)));
  if (!res.ok()) co_return res.error();
  if (*res == "ENOENT") co_return Errno::no_entry;
  co_return Result<void>{};
}

sim::CoTask<Result<std::uint64_t>> DaosClient::alloc_oids(vos::Uuid cont, std::uint64_t count) {
  auto res = co_await svc_command(strfmt("alloc_oids %llu %llu %llu",
                                         static_cast<unsigned long long>(cont.hi), static_cast<unsigned long long>(cont.lo),
                                         static_cast<unsigned long long>(count)));
  if (!res.ok()) co_return res.error();
  std::istringstream is(*res);
  std::string status;
  std::uint64_t base = 0;
  is >> status >> base;
  if (status != "ok") co_return Errno::no_entry;
  co_return base;
}

// ---------------------------------------------------------------------------
// KvObject

KvObject::KvObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid)
    : client_(client), cont_(cont), oid_(oid) {
  const auto cls = class_of(oid);
  const std::uint32_t n = client.pool_map().target_count();
  map_version_ = client.pool_map().version;
  nominal_ = compute_nominal_layout(oid, client::group_count(cls, n),
                                    client::replica_count(cls), client.pool_map());
  layout_ = compute_group_layout(oid, nominal_.groups(), nominal_.replicas, client.pool_map());
}

std::uint32_t KvObject::group_of(const vos::Key& dkey) const {
  return kv_dkey_group(dkey, layout_.groups());
}

bool KvObject::group_lost(std::uint32_t group) const {
  return nominal_group_lost(client_.pool_map(), nominal_, group);
}

void KvObject::refresh_layout() {
  if (map_version_ == client_.pool_map().version) return;
  map_version_ = client_.pool_map().version;
  layout_ = compute_group_layout(oid_, nominal_.groups(), nominal_.replicas, client_.pool_map());
}

sim::CoTask<Errno> KvObject::put(const vos::Key& dkey, const vos::Key& akey,
                                 std::span<const std::byte> value, bool excl) {
  OpTrace tr(client_, "kv_put");
  ObjUpdateReq req;
  req.cont = cont_;
  req.oid = oid_;
  req.dkey = dkey;
  req.akey = akey;
  req.type = RecordType::single_value;
  req.cond_insert = excl;
  req.length = value.size();
  req.data = std::make_shared<std::vector<std::byte>>(value.begin(), value.end());
  const std::uint32_t g = group_of(dkey);
  // Fan the update to every replica of the dkey's group. All-or-retry: the
  // first failure aborts the fan and surfaces to the caller (replica 0 is
  // always first, so conditional-insert races resolve consistently there).
  for (std::uint32_t rep = 0; rep < layout_.replicas; ++rep) {
    for (int round = 0;; ++round) {
      refresh_layout();
      const std::uint32_t map_target = layout_.at(g, rep);
      req.target = client_.pool_map().targets[map_target].target;
      Body body = Body::make(req);
      Reply r = co_await client_.call_target(map_target, engine::kOpObjUpdate, std::move(body),
                                             engine::kObjRpcHeader + value.size(), tr.ctx());
      if (r.status == Errno::stale && round < kMaxPlaceRounds) continue;
      if (r.status != Errno::ok) co_return r.status;
      break;
    }
  }
  co_return Errno::ok;
}

sim::CoTask<Result<std::vector<std::byte>>> KvObject::get(const vos::Key& dkey,
                                                          const vos::Key& akey,
                                                          vos::Epoch epoch) {
  OpTrace tr(client_, "kv_get");
  ObjFetchReq req;
  req.cont = cont_;
  req.oid = oid_;
  req.dkey = dkey;
  req.akey = akey;
  req.type = RecordType::single_value;
  req.epoch = epoch;
  const std::uint32_t g = group_of(dkey);
  const std::uint32_t nreps = layout_.replicas;
  // Degraded read: try replicas in order from a per-key starting point
  // (spreads load); first one holding the record wins.
  const std::uint32_t r0 =
      nreps == 1 ? 0 : std::uint32_t(mix64(key_hash(dkey) ^ oid_.lo) % nreps);
  bool all_answered = true;
  Errno last = Errno::io;
  for (std::uint32_t i = 0; i < nreps; ++i) {
    const std::uint32_t rep = (r0 + i) % nreps;
    Reply r{};
    for (int round = 0;; ++round) {
      refresh_layout();
      const std::uint32_t map_target = layout_.at(g, rep);
      req.target = client_.pool_map().targets[map_target].target;
      Body body = Body::make(req);
      r = co_await client_.call_target(map_target, engine::kOpObjFetch, std::move(body),
                                       engine::kObjRpcHeader, tr.ctx());
      if (r.status != Errno::stale || round >= kMaxPlaceRounds) break;
    }
    if (r.status != Errno::ok) {
      last = r.status;
      all_answered = false;
      client_.note_degraded_read();
      continue;
    }
    auto& resp = r.body.get<ObjFetchResp>();
    if (resp.exists) {
      if (resp.data == nullptr) co_return std::vector<std::byte>{};
      co_return std::move(*resp.data);
    }
  }
  if (group_lost(g)) {
    client_.note_data_loss(oid_, g);
    co_return Errno::data_loss;
  }
  // "Key does not exist" is only definitive when every replica answered: an
  // ok-but-missing reply from a not-yet-rebuilt substitute must not mask a
  // failed replica that may actually hold the record.
  co_return all_answered ? Errno::no_entry : last;
}

sim::CoTask<Result<std::vector<vos::Key>>> KvObject::list_dkeys() {
  OpTrace tr(client_, "kv_list_dkeys");
  std::set<vos::Key> merged;
  refresh_layout();
  for (std::uint32_t g = 0; g < layout_.groups(); ++g) {
    bool got = false;
    Errno last = Errno::io;
    for (std::uint32_t rep = 0; rep < layout_.replicas && !got; ++rep) {
      ObjEnumReq req;
      req.cont = cont_;
      req.oid = oid_;
      Reply r{};
      for (int round = 0;; ++round) {
        refresh_layout();
        const std::uint32_t map_target = layout_.at(g, rep);
        req.target = client_.pool_map().targets[map_target].target;
        Body body = Body::make(req);
        r = co_await client_.call_target(map_target, engine::kOpObjEnumDkeys, std::move(body),
                                         engine::kObjRpcHeader, tr.ctx());
        if (r.status != Errno::stale || round >= kMaxPlaceRounds) break;
      }
      if (r.status != Errno::ok) {
        last = r.status;
        continue;
      }
      got = true;
      for (auto& k : r.body.get<ObjEnumResp>().keys) merged.insert(std::move(k));
    }
    if (!got) {
      if (group_lost(g)) {
        client_.note_data_loss(oid_, g);
        co_return Errno::data_loss;
      }
      co_return last;
    }
  }
  co_return std::vector<vos::Key>(merged.begin(), merged.end());
}

sim::CoTask<Errno> KvObject::punch() {
  OpTrace tr(client_, "kv_punch");
  refresh_layout();
  Errno status = Errno::ok;
  // The layout is a permutation on a healthy map, so per-shard iteration hits
  // each target once; degraded layouts may punch a substitute twice, which is
  // harmless (punch is idempotent).
  for (std::uint32_t s = 0; s < layout_.size(); ++s) {
    ObjPunchReq req;
    req.cont = cont_;
    req.oid = oid_;
    req.scope = PunchScope::object;
    Reply r{};
    for (int round = 0;; ++round) {
      refresh_layout();
      const std::uint32_t map_target = layout_.targets[s];
      req.target = client_.pool_map().targets[map_target].target;
      Body body = Body::make(req);
      r = co_await client_.call_target(map_target, engine::kOpObjPunch, std::move(body),
                                       engine::kObjRpcHeader, tr.ctx());
      if (r.status != Errno::stale || round >= kMaxPlaceRounds) break;
    }
    if (r.status != Errno::ok) status = r.status;
  }
  co_return status;
}

sim::CoTask<Errno> KvObject::punch_dkey(const vos::Key& dkey) {
  OpTrace tr(client_, "kv_punch_dkey");
  ObjPunchReq req;
  req.cont = cont_;
  req.oid = oid_;
  req.scope = PunchScope::dkey;
  req.dkey = dkey;
  const std::uint32_t g = group_of(dkey);
  for (std::uint32_t rep = 0; rep < layout_.replicas; ++rep) {
    for (int round = 0;; ++round) {
      refresh_layout();
      const std::uint32_t map_target = layout_.at(g, rep);
      req.target = client_.pool_map().targets[map_target].target;
      Body body = Body::make(req);
      Reply r = co_await client_.call_target(map_target, engine::kOpObjPunch, std::move(body),
                                             engine::kObjRpcHeader, tr.ctx());
      if (r.status == Errno::stale && round < kMaxPlaceRounds) continue;
      if (r.status != Errno::ok) co_return r.status;
      break;
    }
  }
  co_return Errno::ok;
}

// ---------------------------------------------------------------------------
// ArrayObject

ArrayObject::ArrayObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid,
                         std::uint64_t chunk_size)
    : client_(client), cont_(cont), oid_(oid), chunk_(chunk_size) {
  DAOSIM_REQUIRE(chunk_ > 0, "chunk size must be positive");
  const auto cls = class_of(oid);
  const std::uint32_t n = client.pool_map().target_count();
  map_version_ = client.pool_map().version;
  nominal_ = compute_nominal_layout(oid, client::group_count(cls, n),
                                    client::replica_count(cls), client.pool_map());
  layout_ = compute_group_layout(oid, nominal_.groups(), nominal_.replicas, client.pool_map());
}

bool ArrayObject::group_lost(std::uint32_t group) const {
  return nominal_group_lost(client_.pool_map(), nominal_, group);
}

void ArrayObject::refresh_layout() {
  if (map_version_ == client_.pool_map().version) return;
  map_version_ = client_.pool_map().version;
  layout_ = compute_group_layout(oid_, nominal_.groups(), nominal_.replicas, client_.pool_map());
}

std::vector<ArrayObject::Piece> ArrayObject::split_pieces(std::uint64_t offset,
                                                          std::uint64_t length) const {
  std::vector<Piece> pieces;
  const std::uint64_t end = offset + length;
  std::uint64_t pos = offset;
  while (pos < end) {
    const std::uint64_t chunk_idx = pos / chunk_;
    const std::uint64_t in_chunk = pos % chunk_;
    const std::uint64_t len = std::min(chunk_ - in_chunk, end - pos);
    pieces.push_back(Piece{chunk_idx, in_chunk, len, pos - offset});
    pos += len;
  }
  return pieces;
}

sim::CoTask<Errno> ArrayObject::write(std::uint64_t offset, std::uint64_t length,
                                      std::span<const std::byte> data) {
  DAOSIM_REQUIRE(data.empty() || data.size() == length, "payload size mismatch");
  if (length == 0) co_return Errno::ok;
  OpTrace tr(client_, "arr_write");
  const std::uint64_t global_end = offset + length;
  const std::vector<Piece> pieces = split_pieces(offset, length);
  const std::size_t max_batch = client_.config().max_batch_extents;

  // Fan each piece to every replica of its group. Pieces sharing a target
  // this round ride one batched RPC (bounded by max_batch_extents); pairs
  // whose batch came back stale re-group against the refreshed map next
  // round (bounded, like the old per-piece re-placement loop).
  struct Pend {
    std::uint32_t piece;
    std::uint32_t rep;
  };
  std::vector<Pend> pending;
  pending.reserve(pieces.size() * layout_.replicas);
  for (std::uint32_t p = 0; p < pieces.size(); ++p) {
    for (std::uint32_t rep = 0; rep < layout_.replicas; ++rep) pending.push_back(Pend{p, rep});
  }

  Errno status = Errno::ok;
  for (int round = 0; !pending.empty() && round <= kMaxPlaceRounds; ++round) {
    // One "batch" span per coalescing round: everything the round issues
    // (credit waits, RPCs) hangs beneath it. Id allocated unconditionally.
    const sim::TraceContext round_ctx = tr.ctx().child(client_.scheduler().alloc_span_id());
    const sim::Time round_t0 = client_.scheduler().now();
    refresh_layout();
    // std::map: batch issue order must never depend on addresses (determinism).
    std::map<std::uint32_t, std::vector<Pend>> by_target;
    for (const Pend& p : pending) {
      const std::uint32_t tgt = layout_.at(group_of_chunk(pieces[p.piece].chunk_idx), p.rep);
      by_target[tgt].push_back(p);
    }
    // Local fan-out bound: don't materialise more batch coroutines than the
    // client-wide credit window (update_batch's semaphore is what actually
    // protects the endpoint's in-flight cap across concurrent calls).
    EventQueue eq(client_.scheduler(), client_.config().max_inflight_rpcs);
    std::vector<std::pair<std::vector<Pend>, std::shared_ptr<Errno>>> batches;
    for (auto& [tgt, list] : by_target) {
      for (std::size_t i = 0; i < list.size(); i += max_batch) {
        const std::size_t n = std::min(max_batch, list.size() - i);
        ObjUpdateReq req;
        req.cont = cont_;
        req.oid = oid_;
        req.akey = "0";
        req.type = RecordType::array;
        req.array_end_hint = global_end;
        req.extents.reserve(n);
        std::uint64_t payload_bytes = 0;
        for (std::size_t k = 0; k < n; ++k) {
          const Piece& pc = pieces[list[i + k].piece];
          req.extents.push_back(
              {strfmt("%llu", static_cast<unsigned long long>(pc.chunk_idx)), pc.offset,
               pc.length, payload_bytes});
          payload_bytes += pc.length;
        }
        if (!data.empty()) {
          auto buf = std::make_shared<std::vector<std::byte>>();
          buf->reserve(std::size_t(payload_bytes));
          for (std::size_t k = 0; k < n; ++k) {
            const Piece& pc = pieces[list[i + k].piece];
            auto sub = data.subspan(std::size_t(pc.buffer_off), std::size_t(pc.length));
            buf->insert(buf->end(), sub.begin(), sub.end());
          }
          req.data = std::move(buf);
        }
        const std::uint64_t wire = engine::obj_wire_bytes(n, payload_bytes);
        auto rc = std::make_shared<Errno>(Errno::ok);
        std::vector<Pend> members(list.begin() + std::ptrdiff_t(i),
                                  list.begin() + std::ptrdiff_t(i + n));
        sim::CoTask<void> task = update_batch(tgt, std::move(req), wire, round_ctx, rc);
        co_await eq.launch(std::move(task));
        batches.emplace_back(std::move(members), std::move(rc));
      }
    }
    co_await eq.wait_all();
    if (sim::SpanSink* sink = client_.scheduler().span_sink()) {
      sink->span("batch", strfmt("write round %d: %zu batches", round, batches.size()),
                 client_.endpoint().node(), 0, round_t0, client_.scheduler().now(), round_ctx);
    }
    std::vector<Pend> next;
    for (auto& [members, rc] : batches) {
      if (*rc == Errno::stale) {
        next.insert(next.end(), members.begin(), members.end());
      } else if (*rc != Errno::ok) {
        status = *rc;
      }
    }
    pending = std::move(next);
  }
  if (status == Errno::ok && !pending.empty()) status = Errno::stale;
  co_return status;
}

sim::CoTask<Result<std::uint64_t>> ArrayObject::read(std::uint64_t offset,
                                                     std::span<std::byte> out,
                                                     vos::Epoch epoch) {
  if (out.empty()) co_return std::uint64_t{0};
  OpTrace tr(client_, "arr_read");
  const std::vector<Piece> pieces = split_pieces(offset, out.size());
  const std::size_t max_batch = client_.config().max_batch_extents;
  const std::uint32_t nreps = layout_.replicas;

  // Degraded read, batched: each round every unfinished piece probes one
  // (target, replica) — pieces sharing a target ride one RPC. Replies that
  // are stale re-place (bounded) on the same replica; failures fall back to
  // the next replica from the piece's hashed starting point; the best
  // (most-filled) answer wins, exactly as the old per-piece loop did.
  std::vector<ReadProgress> prog(pieces.size());
  auto rep_of = [&](std::uint32_t i) {
    const std::uint32_t r0 =
        nreps == 1 ? 0 : std::uint32_t(mix64(pieces[i].chunk_idx ^ mix64(oid_.lo)) % nreps);
    return (r0 + prog[i].attempt) % nreps;
  };

  for (int round = 0;; ++round) {
    std::vector<std::uint32_t> active;
    for (std::uint32_t i = 0; i < prog.size(); ++i) {
      if (!prog[i].done && prog[i].attempt < nreps) active.push_back(i);
    }
    if (active.empty()) break;
    // Per-round "batch" span, as in write. Id allocated unconditionally.
    const sim::TraceContext round_ctx = tr.ctx().child(client_.scheduler().alloc_span_id());
    const sim::Time round_t0 = client_.scheduler().now();
    refresh_layout();
    std::map<std::uint32_t, std::vector<std::uint32_t>> by_target;
    for (const std::uint32_t i : active) {
      by_target[layout_.at(group_of_chunk(pieces[i].chunk_idx), rep_of(i))].push_back(i);
    }
    EventQueue eq(client_.scheduler(), client_.config().max_inflight_rpcs);
    std::vector<std::pair<std::vector<std::uint32_t>, std::shared_ptr<Reply>>> batches;
    for (auto& [tgt, list] : by_target) {
      for (std::size_t b = 0; b < list.size(); b += max_batch) {
        const std::size_t n = std::min(max_batch, list.size() - b);
        ObjFetchReq req;
        req.cont = cont_;
        req.oid = oid_;
        req.akey = "0";
        req.type = RecordType::array;
        req.epoch = epoch;
        req.extents.reserve(n);
        std::uint64_t payload_bytes = 0;
        for (std::size_t k = 0; k < n; ++k) {
          const Piece& pc = pieces[list[b + k]];
          req.extents.push_back(
              {strfmt("%llu", static_cast<unsigned long long>(pc.chunk_idx)), pc.offset,
               pc.length, payload_bytes});
          payload_bytes += pc.length;
        }
        auto reply = std::make_shared<Reply>();
        std::vector<std::uint32_t> members(list.begin() + std::ptrdiff_t(b),
                                           list.begin() + std::ptrdiff_t(b + n));
        sim::CoTask<void> task = fetch_batch(tgt, std::move(req), round_ctx, reply);
        co_await eq.launch(std::move(task));
        batches.emplace_back(std::move(members), std::move(reply));
      }
    }
    co_await eq.wait_all();
    if (sim::SpanSink* sink = client_.scheduler().span_sink()) {
      sink->span("batch", strfmt("read round %d: %zu batches", round, batches.size()),
                 client_.endpoint().node(), 0, round_t0, client_.scheduler().now(), round_ctx);
    }
    for (auto& [members, reply] : batches) {
      if (reply->status == Errno::stale) {
        for (const std::uint32_t i : members) {
          ReadProgress& st = prog[i];
          if (st.stale_rounds < kMaxPlaceRounds) {
            ++st.stale_rounds;  // re-place on the same replica next round
          } else {
            st.last = Errno::stale;
            st.all_answered = false;
            client_.note_degraded_read();
            ++st.attempt;
            st.stale_rounds = 0;
          }
        }
      } else if (reply->status != Errno::ok) {
        for (const std::uint32_t i : members) {
          ReadProgress& st = prog[i];
          st.last = reply->status;
          st.all_answered = false;
          client_.note_degraded_read();
          ++st.attempt;
          st.stale_rounds = 0;
        }
      } else {
        auto& resp = reply->body.get<ObjFetchResp>();
        DAOSIM_REQUIRE(resp.fills.size() == members.size(), "batched fetch fill mismatch");
        std::uint64_t payload_off = 0;
        for (std::size_t k = 0; k < members.size(); ++k) {
          const std::uint32_t i = members[k];
          const Piece& pc = pieces[i];
          ReadProgress& st = prog[i];
          if (!st.have_best || resp.fills[k] > st.best_filled) {
            st.have_best = true;
            st.best_filled = resp.fills[k];
            if (resp.data != nullptr) {
              auto src = std::span<const std::byte>(*resp.data)
                             .subspan(std::size_t(payload_off), std::size_t(pc.length));
              auto dst = out.subspan(std::size_t(pc.buffer_off), std::size_t(pc.length));
              std::copy(src.begin(), src.end(), dst.begin());
            }
          }
          payload_off += pc.length;
          if (st.best_filled >= pc.length) {
            st.done = true;
          } else {
            ++st.attempt;
            st.stale_rounds = 0;
          }
        }
      }
    }
  }

  Errno status = Errno::ok;
  std::uint64_t filled = 0;
  for (std::uint32_t i = 0; i < prog.size(); ++i) {
    const ReadProgress& st = prog[i];
    const std::uint32_t g = group_of_chunk(pieces[i].chunk_idx);
    if (!st.have_best) {
      if (group_lost(g)) {
        client_.note_data_loss(oid_, g);
        status = Errno::data_loss;
      } else {
        status = st.last;
      }
      continue;
    }
    filled += st.best_filled;
    // A short read whose group lost every nominal replica is data loss, not a
    // legitimate hole; one with a failed replica is equally inconclusive
    // (see the old fetch_piece note).
    if (st.best_filled < pieces[i].length) {
      if (group_lost(g)) {
        client_.note_data_loss(oid_, g);
        status = Errno::data_loss;
      } else if (!st.all_answered) {
        status = st.last;
      }
    }
  }
  if (status != Errno::ok) co_return status;
  co_return filled;
}

sim::CoTask<Result<std::uint64_t>> ArrayObject::size() {
  OpTrace tr(client_, "arr_size");
  refresh_layout();
  auto status = std::make_shared<Errno>(Errno::ok);
  auto max_end = std::make_shared<std::uint64_t>(0);
  sim::WaitGroup wg(client_.scheduler());
  for (std::uint32_t s = 0; s < layout_.size(); ++s) {
    ObjQueryReq req;
    req.cont = cont_;
    req.oid = oid_;
    req.kind = engine::QueryKind::array_end_hint;
    wg.spawn(query_piece(s, std::move(req), tr.ctx(), status, max_end));
  }
  co_await wg.wait();
  if (*status != Errno::ok) co_return *status;
  co_return *max_end;
}

sim::CoTask<void> ArrayObject::update_batch(std::uint32_t map_target, engine::ObjUpdateReq req,
                                            std::uint64_t wire, sim::TraceContext ctx,
                                            std::shared_ptr<Errno> out) {
  req.target = client_.pool_map().targets[map_target].target;
  client_.note_batch(req.extents.size());
  Body body = Body::make(std::move(req));
  // One client-wide credit per in-flight object RPC: many concurrent array
  // calls (IOR ranks x eq_depth) must collectively stay under the endpoint's
  // hard in-flight cap, which fails excess calls with Errno::busy.
  // The wait is a "credit" child span: under EQ pressure this is where
  // client-side queueing shows up. Id allocated unconditionally.
  const sim::TraceContext credit_ctx = ctx.child(client_.scheduler().alloc_span_id());
  const sim::Time c0 = client_.scheduler().now();
  co_await client_.rpc_credits().acquire();
  if (sim::SpanSink* sink = client_.scheduler().span_sink()) {
    sink->span("credit", strfmt("rpc credit ->%u", map_target), client_.endpoint().node(), 0,
               c0, client_.scheduler().now(), credit_ctx);
  }
  Reply reply =
      co_await client_.call_target(map_target, engine::kOpObjUpdate, std::move(body), wire, ctx);
  client_.rpc_credits().release();
  *out = reply.status;
}

sim::CoTask<void> ArrayObject::fetch_batch(std::uint32_t map_target, engine::ObjFetchReq req,
                                           sim::TraceContext ctx,
                                           std::shared_ptr<net::Reply> out) {
  const std::uint64_t wire = engine::obj_wire_bytes(req.extents.size(), 0);
  req.target = client_.pool_map().targets[map_target].target;
  client_.note_batch(req.extents.size());
  Body body = Body::make(std::move(req));
  const sim::TraceContext credit_ctx = ctx.child(client_.scheduler().alloc_span_id());
  const sim::Time c0 = client_.scheduler().now();
  co_await client_.rpc_credits().acquire();  // see update_batch
  if (sim::SpanSink* sink = client_.scheduler().span_sink()) {
    sink->span("credit", strfmt("rpc credit ->%u", map_target), client_.endpoint().node(), 0,
               c0, client_.scheduler().now(), credit_ctx);
  }
  *out = co_await client_.call_target(map_target, engine::kOpObjFetch, std::move(body), wire,
                                      ctx);
  client_.rpc_credits().release();
}

sim::CoTask<void> ArrayObject::query_piece(std::uint32_t shard, engine::ObjQueryReq req,
                                           sim::TraceContext ctx,
                                           std::shared_ptr<Errno> status,
                                           std::shared_ptr<std::uint64_t> max_end) {
  Reply reply{};
  for (int round = 0;; ++round) {
    refresh_layout();
    const std::uint32_t map_target = layout_.targets[shard];
    req.target = client_.pool_map().targets[map_target].target;
    Body body = Body::make(req);
    reply = co_await client_.call_target(map_target, engine::kOpObjQuery, std::move(body),
                                         engine::kObjRpcHeader, ctx);
    if (reply.status != Errno::stale || round >= kMaxPlaceRounds) break;
  }
  if (reply.status != Errno::ok) {
    *status = reply.status;
    co_return;
  }
  *max_end = std::max(*max_end, reply.body.get<ObjQueryResp>().value);
}

sim::CoTask<Errno> ArrayObject::punch() {
  OpTrace tr(client_, "arr_punch");
  refresh_layout();
  Errno status = Errno::ok;
  for (std::uint32_t s = 0; s < layout_.size(); ++s) {
    ObjPunchReq req;
    req.cont = cont_;
    req.oid = oid_;
    req.scope = PunchScope::object;
    Reply r{};
    for (int round = 0;; ++round) {
      refresh_layout();
      const std::uint32_t map_target = layout_.targets[s];
      req.target = client_.pool_map().targets[map_target].target;
      Body body = Body::make(req);
      r = co_await client_.call_target(map_target, engine::kOpObjPunch, std::move(body),
                                       engine::kObjRpcHeader, tr.ctx());
      if (r.status != Errno::stale || round >= kMaxPlaceRounds) break;
    }
    if (r.status != Errno::ok) status = r.status;
  }
  co_return status;
}

}  // namespace daosim::client
