#include "client/tx.hpp"

#include <algorithm>
#include <sstream>

namespace daosim::client {

using net::Body;
using net::Reply;

namespace {
// Trace-digest tags for client-side transaction outcomes (the engine-side
// DTX service owns 0xFA17E009..E00D).
constexpr std::uint64_t kTraceTxCommitted = 0xFA17E00E'0000'0000ULL;
constexpr std::uint64_t kTraceTxRestarted = 0xFA17E00F'0000'0000ULL;
}  // namespace

// ---------------------------------------------------------------------------
// TxHandle

TxHandle::TxHandle(DaosClient& client, vos::Uuid cont, std::uint64_t seq)
    : client_(client), cont_(cont), id_{client.endpoint().node(), seq} {}

void TxHandle::stage(std::uint32_t map_target, engine::TxOpDesc op) {
  staged_[map_target].push_back(std::move(op));
}

std::size_t TxHandle::staged_ops() const {
  std::size_t n = 0;
  for (const auto& [mt, ops] : staged_) n += ops.size();
  return n;
}

void TxHandle::kv_put(vos::ObjId oid, const vos::Key& dkey, const vos::Key& akey,
                      std::span<const std::byte> value) {
  DAOSIM_REQUIRE(state_ == State::open, "kv_put on a decided transaction");
  const auto cls = class_of(oid);
  const std::uint32_t n = client_.pool_map().target_count();
  const GroupLayout layout =
      compute_group_layout(oid, group_count(cls, n), replica_count(cls), client_.pool_map());
  engine::TxOpDesc op;
  op.oid = oid;
  op.dkey = dkey;
  op.akey = akey;
  op.type = engine::RecordType::single_value;
  op.length = value.size();
  op.data = std::make_shared<std::vector<std::byte>>(value.begin(), value.end());
  const std::uint32_t g = kv_dkey_group(dkey, layout.groups());
  // Replica fan happens at staging time: every replica of the group is a
  // full participant with its own prepared entry (the op payload is shared).
  for (std::uint32_t rep = 0; rep < layout.replicas; ++rep) stage(layout.at(g, rep), op);
}

void TxHandle::array_write(vos::ObjId oid, std::uint64_t chunk_size, std::uint64_t offset,
                           std::uint64_t length, std::span<const std::byte> data) {
  DAOSIM_REQUIRE(state_ == State::open, "array_write on a decided transaction");
  DAOSIM_REQUIRE(chunk_size > 0, "chunk size must be positive");
  DAOSIM_REQUIRE(data.empty() || data.size() == length, "payload size mismatch");
  if (length == 0) return;
  const auto cls = class_of(oid);
  const std::uint32_t n = client_.pool_map().target_count();
  const GroupLayout layout =
      compute_group_layout(oid, group_count(cls, n), replica_count(cls), client_.pool_map());
  const std::uint64_t end = offset + length;
  std::uint64_t pos = offset;
  while (pos < end) {
    const std::uint64_t chunk_idx = pos / chunk_size;
    const std::uint64_t in_chunk = pos % chunk_size;
    const std::uint64_t len = std::min(chunk_size - in_chunk, end - pos);
    engine::TxOpDesc op;
    op.oid = oid;
    op.dkey = strfmt("%llu", static_cast<unsigned long long>(chunk_idx));
    op.akey = "0";
    op.type = engine::RecordType::array;
    op.offset = in_chunk;
    op.length = len;
    op.array_end_hint = end;
    if (!data.empty()) {
      auto sub = data.subspan(std::size_t(pos - offset), std::size_t(len));
      op.data = std::make_shared<std::vector<std::byte>>(sub.begin(), sub.end());
    }
    const std::uint32_t g = array_chunk_group(oid, chunk_idx, layout.groups());
    for (std::uint32_t rep = 0; rep < layout.replicas; ++rep) stage(layout.at(g, rep), op);
    pos += len;
  }
}

sim::CoTask<Errno> TxHandle::commit() {
  DAOSIM_REQUIRE(state_ == State::open, "commit on a decided transaction");
  if (staged_.empty()) {
    state_ = State::committed;
    client_.note_tx_commit(0);
    co_return Errno::ok;
  }
  // The commit is a traced client-level op: prepares, the leader decision
  // and both fans hang beneath one root, so a 2PC reads as a single tree.
  OpTrace tr(client_, "tx_commit");
  sim::Scheduler& sched = client_.scheduler();
  const sim::Time t0 = sched.now();
  epoch_ = client_.tx_alloc_epoch();
  leader_ = staged_.begin()->first;

  // Phase 1: prepare on every participant in parallel. A prepare stages the
  // shard's ops at epoch_ and locks the touched keys; any conflict answers
  // Errno::tx_restart.
  sim::WaitGroup wg(sched);
  std::vector<std::shared_ptr<Errno>> results;
  for (const auto& [mt, ops] : staged_) {
    auto rc = std::make_shared<Errno>(Errno::ok);
    sim::CoTask<void> task = prepare_one(mt, tr.ctx(), rc);
    wg.spawn(std::move(task));
    results.push_back(std::move(rc));
  }
  co_await wg.wait();
  Errno prep = Errno::ok;
  for (const auto& rc : results) {
    if (*rc != Errno::ok && prep == Errno::ok) prep = *rc;
    if (*rc == Errno::tx_restart) prep = Errno::tx_restart;  // conflicts dominate
  }
  if (prep != Errno::ok) {
    // Abort everywhere (including the leader, whose sticky abort record
    // fences any prepare still in flight after a timed-out attempt).
    co_await abort_fan(tr.ctx());
    state_ = State::aborted;
    client_.note_tx_abort();
    if (prep == Errno::tx_restart) {
      client_.note_tx_restart();
      sched.trace_note(kTraceTxRestarted ^ (id_.client << 32) ^ id_.seq);
    }
    co_return prep;
  }

  // Phase 2: decide on the leader shard FIRST — its decision record is the
  // durable commit point every resolve consults.
  const Errno lead = co_await decide_one(leader_, engine::kOpTxCommit, tr.ctx());
  if (lead == Errno::tx_restart) {
    // The orphan reaper's sticky abort beat the commit: definitive loss.
    co_await abort_fan(tr.ctx());
    state_ = State::aborted;
    client_.note_tx_abort();
    client_.note_tx_restart();
    sched.trace_note(kTraceTxRestarted ^ (id_.client << 32) ^ id_.seq);
    co_return Errno::tx_restart;
  }
  if (lead != Errno::ok) {
    // In doubt: the leader may or may not have recorded the commit, so no
    // abort may be sent. DTX resync settles every shard from the leader's
    // table (or orphan-aborts if the record never landed).
    state_ = State::in_doubt;
    co_return lead;
  }
  // Fan the commit to the remaining participants. Failures are tolerated:
  // a shard that missed the decision keeps its prepared entry until the
  // reaper resolves it against the leader.
  sim::WaitGroup fan(sched);
  for (const auto& [mt, ops] : staged_) {
    if (mt == leader_) continue;
    sim::CoTask<void> task = decide_quiet(mt, engine::kOpTxCommit, tr.ctx());
    fan.spawn(std::move(task));
  }
  co_await fan.wait();
  state_ = State::committed;
  client_.note_tx_commit(sched.now() - t0);
  sched.trace_note(kTraceTxCommitted ^ (id_.client << 32) ^ id_.seq);
  co_return Errno::ok;
}

sim::CoTask<Errno> TxHandle::abort() {
  DAOSIM_REQUIRE(state_ == State::open, "abort on a decided transaction");
  // Nothing has been prepared: staging is local until commit() runs.
  state_ = State::aborted;
  staged_.clear();
  client_.note_tx_abort();
  co_return Errno::ok;
}

sim::CoTask<void> TxHandle::prepare_one(std::uint32_t map_target, sim::TraceContext ctx,
                                        std::shared_ptr<Errno> out) {
  engine::TxPrepareReq req;
  req.cont = cont_;
  req.tx_client = id_.client;
  req.tx_seq = id_.seq;
  req.epoch = epoch_;
  req.leader = leader_;
  req.target = client_.pool_map().targets[map_target].target;
  req.ops = staged_.at(map_target);
  std::uint64_t payload = 0;
  for (const auto& op : req.ops) payload += op.length;
  const std::uint64_t wire = engine::obj_wire_bytes(req.ops.size(), payload);
  Body body = Body::make(std::move(req));
  // Credit wait as a "credit" child span (see ArrayObject::update_batch).
  const sim::TraceContext credit_ctx = ctx.child(client_.scheduler().alloc_span_id());
  const sim::Time c0 = client_.scheduler().now();
  co_await client_.rpc_credits().acquire();
  if (sim::SpanSink* sink = client_.scheduler().span_sink()) {
    sink->span("credit", strfmt("rpc credit ->%u", map_target), client_.endpoint().node(), 0,
               c0, client_.scheduler().now(), credit_ctx);
  }
  Reply r = co_await client_.call_target(map_target, engine::kOpTxPrepare, std::move(body), wire,
                                         ctx);
  client_.rpc_credits().release();
  *out = r.status;
}

sim::CoTask<Errno> TxHandle::decide_one(std::uint32_t map_target, std::uint16_t opcode,
                                        sim::TraceContext ctx) {
  engine::TxDecideReq req;
  req.cont = cont_;
  req.tx_client = id_.client;
  req.tx_seq = id_.seq;
  req.target = client_.pool_map().targets[map_target].target;
  Body body = Body::make(std::move(req));
  Reply r = co_await client_.call_target(map_target, opcode, std::move(body),
                                         engine::kObjRpcHeader, ctx);
  co_return r.status;
}

sim::CoTask<void> TxHandle::decide_quiet(std::uint32_t map_target, std::uint16_t opcode,
                                         sim::TraceContext ctx) {
  (void)co_await decide_one(map_target, opcode, ctx);
}

sim::CoTask<void> TxHandle::abort_fan(sim::TraceContext ctx) {
  sim::WaitGroup wg(client_.scheduler());
  for (const auto& [mt, ops] : staged_) {
    sim::CoTask<void> task = decide_quiet(mt, engine::kOpTxAbort, ctx);
    wg.spawn(std::move(task));
  }
  co_await wg.wait();
}

// ---------------------------------------------------------------------------
// DaosClient transaction & snapshot entry points

TxHandle DaosClient::tx_begin(vos::Uuid cont) { return TxHandle(*this, cont, ++tx_seq_); }

vos::Epoch DaosClient::tx_alloc_epoch() {
  const vos::Epoch e =
      std::max(vos::hlc_client(sched_.now(), ep_.node()), tx_last_epoch_ + 1);
  tx_last_epoch_ = e;
  return e;
}

sim::CoTask<Errno> DaosClient::run_tx(vos::Uuid cont,
                                      std::function<sim::CoTask<Errno>(TxHandle&)> body,
                                      int max_restarts) {
  Errno last = Errno::tx_restart;
  for (int attempt = 1; attempt <= max_restarts; ++attempt) {
    TxHandle tx = tx_begin(cont);
    Errno st = co_await body(tx);
    if (st != Errno::ok) {
      if (tx.open()) co_await tx.abort();
      co_return st;
    }
    st = co_await tx.commit();
    if (st == Errno::ok) co_return Errno::ok;
    // tx_restart (lost a conflict) and stale (a participant moved) both
    // restage cleanly; anything else — including in-doubt commits — must
    // surface, not silently re-run.
    if (st != Errno::tx_restart && st != Errno::stale) co_return st;
    last = st;
    co_await sched_.delay(retry_backoff(retry_, attempt));
  }
  co_return last;
}

sim::CoTask<Result<vos::Epoch>> DaosClient::snapshot_create(vos::Uuid cont) {
  // A fresh HLC epoch is a consistent cut: every transaction this client
  // saw commit is at or below it, every later one lands above it.
  const vos::Epoch e = tx_alloc_epoch();
  auto res = co_await svc_command(strfmt("snap_create %llu %llu %llu",
                                         static_cast<unsigned long long>(cont.hi),
                                         static_cast<unsigned long long>(cont.lo),
                                         static_cast<unsigned long long>(e)));
  if (!res.ok()) co_return res.error();
  if (*res == "ENOENT") co_return Errno::no_entry;
  if (*res != "ok") co_return Errno::io;
  co_return e;
}

sim::CoTask<Result<void>> DaosClient::snapshot_destroy(vos::Uuid cont, vos::Epoch epoch) {
  auto res = co_await svc_command(strfmt("snap_destroy %llu %llu %llu",
                                         static_cast<unsigned long long>(cont.hi),
                                         static_cast<unsigned long long>(cont.lo),
                                         static_cast<unsigned long long>(epoch)));
  if (!res.ok()) co_return res.error();
  if (*res == "ENOENT") co_return Errno::no_entry;
  if (*res != "ok") co_return Errno::io;
  co_return Result<void>{};
}

sim::CoTask<Result<std::vector<vos::Epoch>>> DaosClient::list_snapshots(vos::Uuid cont) {
  auto res = co_await svc_command(strfmt("snap_list %llu %llu",
                                         static_cast<unsigned long long>(cont.hi),
                                         static_cast<unsigned long long>(cont.lo)));
  if (!res.ok()) co_return res.error();
  std::istringstream is(*res);
  std::string status;
  is >> status;
  if (status == "ENOENT") co_return Errno::no_entry;
  if (status != "ok") co_return Errno::io;
  std::size_t n = 0;
  is >> n;
  std::vector<vos::Epoch> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) is >> out[i];
  co_return out;
}

sim::CoTask<Result<void>> DaosClient::cont_aggregate(vos::Uuid cont, vos::Epoch upto) {
  auto snaps = co_await list_snapshots(cont);
  if (!snaps.ok()) co_return snaps.error();
  if (!snaps->empty()) {
    const vos::Epoch min_snap = snaps->front();
    if (min_snap == 0) co_return Result<void>{};
    upto = std::min(upto, min_snap - 1);  // never merge across a snapshot
  }
  if (upto == 0) co_return Result<void>{};
  Errno status = Errno::ok;
  for (std::uint32_t mt = 0; mt < map_.target_count(); ++mt) {
    if (map_.targets[mt].health == pool::TargetHealth::excluded) continue;
    engine::ContAggregateReq req;
    req.cont = cont;
    req.target = map_.targets[mt].target;
    req.upto = upto;
    Body body = Body::make(std::move(req));
    Reply r = co_await call_target(mt, engine::kOpContAggregate, std::move(body),
                                   engine::kObjRpcHeader);
    // stale = the target got evicted mid-walk: its history is rebuilt
    // elsewhere, nothing to aggregate there.
    if (r.status != Errno::ok && r.status != Errno::stale) status = r.status;
  }
  if (status != Errno::ok) co_return status;
  co_return Result<void>{};
}

}  // namespace daosim::client
