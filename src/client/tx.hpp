// Client-coordinated distributed transactions (the daos_tx_* model): writes
// staged through a TxHandle become visible atomically, on every touched
// shard, at one client-chosen HLC epoch. The handle is the two-phase-commit
// coordinator: commit() prepares on every participating shard (staging the
// ops and locking the keys), then drives the decision — leader shard first,
// whose durable decision record is the commit point — and fans it out.
// Conflicts surface as Errno::tx_restart; DaosClient::run_tx wraps the
// restart loop. Protocol details and the failure matrix: docs/dtx.md.
#pragma once

#include "client/client.hpp"

namespace daosim::client {

class TxHandle {
 public:
  /// Use DaosClient::tx_begin, which allocates the per-client sequence.
  TxHandle(DaosClient& client, vos::Uuid cont, std::uint64_t seq);
  TxHandle(TxHandle&&) = default;
  TxHandle(const TxHandle&) = delete;
  TxHandle& operator=(const TxHandle&) = delete;

  // --- staging (local, no RPCs until commit) ---

  /// Stages a single-value put on every replica of the dkey's group.
  void kv_put(vos::ObjId oid, const vos::Key& dkey, const vos::Key& akey,
              std::span<const std::byte> value);
  /// Stages an array write (chunked into dkeys exactly like
  /// ArrayObject::write). `data` must be `length` bytes or empty
  /// (metadata-only mode).
  void array_write(vos::ObjId oid, std::uint64_t chunk_size, std::uint64_t offset,
                   std::uint64_t length, std::span<const std::byte> data);

  // --- two-phase commit ---

  /// Runs the 2PC: Errno::ok = committed (all staged writes visible at
  /// commit_epoch()); Errno::tx_restart = lost a conflict or raced the
  /// orphan reaper — restart with a fresh handle; Errno::stale = a
  /// participant moved under us — restage against the refreshed map;
  /// anything else = in doubt (the leader's answer was lost; DTX resync
  /// settles the shards either way, and the caller must re-read to learn
  /// the outcome).
  sim::CoTask<Errno> commit();
  /// Drops the staged writes. Purely local before commit() — nothing has
  /// been sent to any shard yet.
  sim::CoTask<Errno> abort();

  bool open() const { return state_ == State::open; }
  bool committed() const { return state_ == State::committed; }
  vos::DtxId id() const { return id_; }
  /// Valid once commit() returned Errno::ok.
  vos::Epoch commit_epoch() const { return epoch_; }
  std::size_t staged_ops() const;
  std::size_t participants() const { return staged_.size(); }

 private:
  enum class State : std::uint8_t { open, committed, aborted, in_doubt };

  void stage(std::uint32_t map_target, engine::TxOpDesc op);
  // `ctx` is the commit-time trace root: the whole 2PC — prepares, the
  // leader decision, the commit/abort fans — assembles into one trace tree.
  sim::CoTask<void> prepare_one(std::uint32_t map_target, sim::TraceContext ctx,
                                std::shared_ptr<Errno> out);
  sim::CoTask<Errno> decide_one(std::uint32_t map_target, std::uint16_t opcode,
                                sim::TraceContext ctx);
  sim::CoTask<void> decide_quiet(std::uint32_t map_target, std::uint16_t opcode,
                                 sim::TraceContext ctx);
  /// Abort on every participant, failures tolerated (the reaper finishes
  /// the job against the leader's sticky abort record).
  sim::CoTask<void> abort_fan(sim::TraceContext ctx);

  DaosClient& client_;
  vos::Uuid cont_;
  vos::DtxId id_;
  State state_ = State::open;
  vos::Epoch epoch_ = 0;
  std::uint32_t leader_ = 0;  // lowest participating pool-map target
  /// map_target -> staged ops. std::map: the fan order and the leader
  /// choice must be deterministic.
  std::map<std::uint32_t, std::vector<engine::TxOpDesc>> staged_;
};

}  // namespace daosim::client
