// Core VOS value types shared across the storage stack.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace daosim::vos {

/// 128-bit object identifier (DAOS packs object class bits into `hi`).
struct ObjId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  auto operator<=>(const ObjId&) const = default;
};

/// 128-bit container / pool UUID.
struct Uuid {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  auto operator<=>(const Uuid&) const = default;
};

/// Transactional epoch. Updates are tagged with the epoch in which they were
/// made; fetches resolve visibility against an epoch.
using Epoch = std::uint64_t;
constexpr Epoch kEpochMax = ~0ULL;

/// Distribution / attribute keys are short byte strings.
using Key = std::string;

/// Whether array payload bytes are actually stored. `discard` keeps only
/// extent metadata (sizes/versions) so the largest benchmark configurations
/// fit in host memory; reads then return zeros. Tests use `store`.
enum class PayloadMode { store, discard };

}  // namespace daosim::vos

template <>
struct std::hash<daosim::vos::ObjId> {
  std::size_t operator()(const daosim::vos::ObjId& o) const noexcept {
    return std::hash<std::uint64_t>{}(o.hi * 0x9E3779B97F4A7C15ULL ^ o.lo);
  }
};

template <>
struct std::hash<daosim::vos::Uuid> {
  std::size_t operator()(const daosim::vos::Uuid& u) const noexcept {
    return std::hash<std::uint64_t>{}(u.hi * 0xC2B2AE3D27D4EB4FULL ^ u.lo);
  }
};
