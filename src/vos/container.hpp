// VosContainer: one container's object index on one target.
//
// Index structure mirrors VOS: object table -> per-object dkey tree ->
// per-dkey akey tree -> versioned records (single values or array extents).
// Epochs within a container are issued by a monotonic counter (the engine's
// transaction clock).
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "vos/btree.hpp"
#include "vos/dtx.hpp"
#include "vos/types.hpp"
#include "vos/value_store.hpp"

namespace daosim::vos {

class VosContainer {
 public:
  explicit VosContainer(PayloadMode mode) : mode_(mode) {}
  /// Not movable: array stores bind their probe accounting to the address of
  /// tree_stats_ (see akey_node_in), so a moved-from container would leave
  /// dangling counter pointers behind. VosTarget constructs shards in place.
  VosContainer(VosContainer&&) = delete;
  VosContainer& operator=(VosContainer&&) = delete;

  /// Issues the next write epoch (monotonic per container).
  Epoch next_epoch() { return ++epoch_clock_; }
  Epoch current_epoch() const { return epoch_clock_; }
  PayloadMode payload_mode() const { return mode_; }

  /// Hybrid-logical-clock receive rule: runs the epoch clock forward to an
  /// externally observed timestamp (never backwards). Engines feed it the
  /// virtual wall clock before issuing write epochs, which places every
  /// shard's epochs — and the client-chosen DTX commit/snapshot epochs drawn
  /// from the same clock — on one comparable timeline.
  void observe_time(Epoch e) {
    if (epoch_clock_ < e) epoch_clock_ = e;
  }

  // --- array records ---
  void array_write(ObjId oid, const Key& dkey, const Key& akey, std::uint64_t offset,
                   std::uint64_t length, std::span<const std::byte> data, Epoch epoch);
  /// Returns bytes that overlapped written data; holes read as zero.
  std::uint64_t array_read(ObjId oid, const Key& dkey, const Key& akey, std::uint64_t offset,
                           std::span<std::byte> out, Epoch epoch) const;

  /// One extent of a batched array visit: a dkey-relative byte range plus
  /// its offset into the shared payload buffer.
  struct ArrayExtent {
    Key dkey;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint64_t payload_off = 0;
  };
  /// Batched array write (the engine's single-service-visit entry point):
  /// applies every extent under one object-table descent. Each extent gets
  /// its own epoch from next_epoch(), so versioning is identical to issuing
  /// the extents as separate updates. `payload` is empty in discard mode.
  void array_write_extents(ObjId oid, const Key& akey, std::span<const ArrayExtent> extents,
                           std::span<const std::byte> payload);
  /// Batched array read: one object-table descent, then per-extent dkey/akey
  /// probes. Fills `payload` at each extent's payload_off (when non-empty)
  /// and `fills[i]` with the extent's overlap; returns the total overlap.
  std::uint64_t array_read_extents(ObjId oid, const Key& akey,
                                   std::span<const ArrayExtent> extents,
                                   std::span<std::byte> payload, std::span<std::uint64_t> fills,
                                   Epoch epoch) const;
  /// Like array_read, but also reports the per-byte fill state in `mask`
  /// (resized to out.size()). Rebuild merges a pulled image under the bytes
  /// this replica already holds.
  std::uint64_t array_read_masked(ObjId oid, const Key& dkey, const Key& akey,
                                  std::uint64_t offset, std::span<std::byte> out,
                                  std::vector<bool>& mask, Epoch epoch) const;
  std::uint64_t array_size(ObjId oid, const Key& dkey, const Key& akey, Epoch epoch) const;

  // --- single-value (KV) records ---
  void kv_put(ObjId oid, const Key& dkey, const Key& akey, std::span<const std::byte> value,
              Epoch epoch);
  SingleValueStore::View kv_get(ObjId oid, const Key& dkey, const Key& akey, Epoch epoch) const;
  /// Epoch of the akey's newest single-value version (puts and punches);
  /// 0 if the akey holds no single value. Rebuild resync compares this to
  /// its reintegration floor to avoid shadowing post-reint writes.
  Epoch kv_latest_epoch(ObjId oid, const Key& dkey, const Key& akey) const;
  /// Sets mask bits for bytes of [offset, offset + mask.size()) the akey's
  /// array store touched after `since` (see ArrayStore::mask_newer_than).
  void array_mask_newer(ObjId oid, const Key& dkey, const Key& akey, std::uint64_t offset,
                        Epoch since, std::vector<bool>& mask) const;

  // --- punch ---
  void punch_akey(ObjId oid, const Key& dkey, const Key& akey, Epoch epoch);
  void punch_dkey(ObjId oid, const Key& dkey, Epoch epoch);
  void punch_object(ObjId oid, Epoch epoch);

  // --- enumeration ---
  /// Dkeys with at least one record visible at `epoch`, in key order.
  std::vector<Key> list_dkeys(ObjId oid, Epoch epoch) const;
  std::vector<Key> list_akeys(ObjId oid, const Key& dkey, Epoch epoch) const;
  std::vector<ObjId> list_objects() const;

  /// Object-level array high-water mark (global array offset), maintained by
  /// the client array API for O(1) size queries (mirrors the DAOS array
  /// metadata record).
  void note_array_end(ObjId oid, std::uint64_t global_end);
  std::uint64_t array_end_hint(ObjId oid) const;

  /// One aggregation pass's outcome (summed over every akey's array store).
  /// `upto` is the epoch actually aggregated to after the DTX-floor clamp.
  struct AggregateResult {
    std::uint64_t extents_retired = 0;
    std::uint64_t bytes_flattened = 0;
    Epoch upto = 0;
  };

  /// Merges record versions <= `upto` (background aggregation service).
  /// Never merges across the oldest prepared-transaction epoch: an undecided
  /// DTX must still be able to commit below everything aggregated so far.
  AggregateResult aggregate(Epoch upto);

  // --- distributed transactions (implemented in dtx.cpp; see docs/dtx.md) ---

  /// Phase 1: stages the entry's writes, invisible to reads, locking every
  /// touched (oid, dkey, akey). Errno::tx_restart on a write-write conflict
  /// with another prepared transaction or with a committed record newer than
  /// the entry's epoch. Idempotent per id; a prepare that arrives after the
  /// decision returns ok (committed) or tx_restart (aborted).
  Errno dtx_prepare(DtxEntry entry);
  /// Phase 2: records the committed decision and applies the staged ops at
  /// the entry's epoch. Idempotent; returns false iff the id was already
  /// decided as aborted (the sticky abort a too-late commit runs into).
  bool dtx_commit(const DtxId& id);
  /// Records the aborted decision and drops the staged ops, leaving no
  /// trace. Idempotent; a no-op when the id already committed.
  void dtx_abort(const DtxId& id);
  /// Resolve query: prepared / committed / aborted / unknown (never seen).
  DtxState dtx_state(const DtxId& id) const;
  const DtxEntry* dtx_find_prepared(const DtxId& id) const;
  /// Prepared ids in DtxId order (deterministic resync/reaper walks).
  std::vector<DtxId> dtx_prepared_ids() const;
  /// Oldest prepared epoch (kEpochMax when none): the aggregation floor.
  Epoch dtx_min_prepared_epoch() const;
  std::size_t dtx_prepared_count() const { return dtx_prepared_.size(); }
  std::size_t dtx_decided_count() const { return dtx_decisions_.size(); }

  /// One record flattened for rebuild transfer: arrays export their full
  /// visible image (holes as zeros), single values the latest version.
  struct ExportRecord {
    Key dkey;
    Key akey;
    bool is_array = false;
    std::uint64_t length = 0;
    std::vector<std::byte> data;  // empty in discard mode
  };

  /// Flattens the object's records newer than `min_epoch` (per this
  /// container's epoch clock; 0 = everything) for replication to a peer
  /// target. Records are emitted in dkey/akey tree order.
  std::vector<ExportRecord> export_object(ObjId oid, Epoch min_epoch) const;

  std::size_t object_count() const { return objects_.size(); }
  std::uint64_t stored_bytes() const;
  std::uint64_t logical_bytes_written() const { return logical_bytes_; }

  /// Plain index-operation counters polled by the engine's telemetry probes
  /// (VOS itself stays free of the telemetry dependency). `lookups` counts
  /// tree probes (object/dkey/akey), `inserts` node creations,
  /// `extent_merges` array extents retired by aggregate(), and
  /// `extent_probes` evtree visibility probes on read-side resolution (one
  /// per index seek plus log2(version-stack depth) per overlapped segment —
  /// the per-read cost the endurance bench watches stay flat).
  struct TreeStats {
    std::uint64_t lookups = 0;
    std::uint64_t inserts = 0;
    std::uint64_t extent_merges = 0;
    std::uint64_t extent_probes = 0;
    TreeStats& operator+=(const TreeStats& o) {
      lookups += o.lookups;
      inserts += o.inserts;
      extent_merges += o.extent_merges;
      extent_probes += o.extent_probes;
      return *this;
    }
  };
  const TreeStats& tree_stats() const { return tree_stats_; }

 private:
  struct AkeyNode {
    SingleValueStore sv;
    ArrayStore arr;
    bool has_sv = false;
    bool has_arr = false;
  };
  struct DkeyNode {
    BPlusTree<Key, std::unique_ptr<AkeyNode>> akeys;
  };
  struct ObjectNode {
    BPlusTree<Key, std::unique_ptr<DkeyNode>> dkeys;
    std::uint64_t array_end_hint = 0;
  };

  ObjectNode& obj(ObjId oid);
  const ObjectNode* find_obj(ObjId oid) const;
  AkeyNode& akey_node(ObjId oid, const Key& dkey, const Key& akey);
  /// Descends from an already-resolved object node (batched visits resolve
  /// the object once and reuse it across extents).
  AkeyNode& akey_node_in(ObjectNode& o, const Key& dkey, const Key& akey);
  const AkeyNode* find_akey_in(const ObjectNode& o, const Key& dkey, const Key& akey) const;
  const AkeyNode* find_akey(ObjId oid, const Key& dkey, const Key& akey) const;
  static bool akey_visible(const AkeyNode& a, Epoch epoch);

  /// Newest stored epoch (put/punch, single-value or array) for the akey;
  /// 0 when the akey holds nothing. The DTX lost-update conflict check.
  Epoch akey_latest_epoch(ObjId oid, const Key& dkey, const Key& akey) const;
  void apply_dtx_op(const DtxOp& op, Epoch epoch);

  PayloadMode mode_;
  Epoch epoch_clock_ = 0;
  std::uint64_t logical_bytes_ = 0;
  /// Staged-but-undecided transactions touching this shard (std::map:
  /// deterministic iteration for conflict checks and resync walks).
  std::map<DtxId, DtxEntry> dtx_prepared_;
  /// Commit/abort decisions (the DAOS committed table): idempotency for
  /// retried phase-2 RPCs and the answer store for resolve queries.
  std::map<DtxId, DtxState> dtx_decisions_;
  mutable TreeStats tree_stats_;  // mutable: lookups count on const reads
  BPlusTree<ObjId, std::unique_ptr<ObjectNode>> objects_;
};

}  // namespace daosim::vos
