// Versioned value stores for one attribute key (akey):
//   SingleValueStore — one value per epoch (DAOS "single value" records)
//   ArrayStore       — byte-extent records with epoch-resolved visibility
//
// Both keep every version until aggregate() merges epochs, mirroring VOS's
// multi-version design. ArrayStore is organised as an evtree-style ordered
// interval index (see docs/vos.md): non-overlapping byte segments keyed by
// start offset, each holding an epoch-sorted version stack, so visibility
// resolution costs O(log segments + overlapped segments * log versions)
// instead of a whole-history overlay scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "vos/types.hpp"

namespace daosim::vos {

class SingleValueStore {
 public:
  void put(std::span<const std::byte> value, Epoch epoch, PayloadMode mode);
  void punch(Epoch epoch);

  /// Latest value visible at `epoch`; nullptr if none (or punched).
  /// With PayloadMode::discard, returns an empty-but-present record.
  struct View {
    bool exists = false;
    std::uint64_t size = 0;
    std::span<const std::byte> data{};  // empty in discard mode
  };
  View get(Epoch epoch) const;

  /// Drops versions shadowed at `upto`.
  void aggregate(Epoch upto);

  std::size_t version_count() const { return versions_.size(); }

  /// Epoch of the newest version (0 if empty). Rebuild resync uses this to
  /// skip records the stale replica already holds.
  Epoch latest_epoch() const { return versions_.empty() ? 0 : versions_.back().epoch; }

 private:
  struct Version {
    Epoch epoch;
    bool punched;
    std::uint64_t size;
    std::vector<std::byte> data;
  };
  /// Keeps versions_ ascending when a write (e.g. a DTX commit) lands below
  /// the newest stored epoch; a same-epoch insert replaces in place.
  void insert_sorted(Version v);
  std::vector<Version> versions_;  // ascending epoch
};

class ArrayStore {
 public:
  /// Records a write of `length` bytes at `offset`. `data` may be empty in
  /// discard mode; otherwise data.size() == length.
  void write(std::uint64_t offset, std::uint64_t length, std::span<const std::byte> data,
             Epoch epoch, PayloadMode mode);

  /// Punches (logically zeroes / removes) the byte range at `epoch`.
  void punch_range(std::uint64_t offset, std::uint64_t length, Epoch epoch);
  /// Punches the whole akey at `epoch`: size drops to zero.
  void punch_all(Epoch epoch);

  /// Reads `out.size()` bytes at `offset` as visible at `epoch`. Holes and
  /// punched ranges read as zero. Returns the number of bytes that overlap
  /// written data (the "filled" count).
  std::uint64_t read(std::uint64_t offset, std::span<std::byte> out, Epoch epoch) const;

  /// Like read(), but also reports the per-byte fill state in `mask`
  /// (resized to out.size()). Rebuild uses the mask to merge a pulled image
  /// under bytes the local replica already holds.
  std::uint64_t read_masked(std::uint64_t offset, std::span<std::byte> out,
                            std::vector<bool>& mask, Epoch epoch) const;

  /// Highest written offset+length visible at `epoch` (0 if empty/punched).
  std::uint64_t size(Epoch epoch) const;

  /// Sets mask bits for bytes in [offset, offset + mask.size()) touched by
  /// any extent, range punch, or full punch recorded after `since`. Rebuild
  /// resync uses this to keep bytes the replica wrote after reintegration on
  /// top of the pulled window image. Only sets bits, never clears them.
  void mask_newer_than(std::uint64_t offset, Epoch since, std::vector<bool>& mask) const;

  /// What one aggregation pass removed (extents-retired feeds the container's
  /// `extent_merges` stat directly — no before/after rescan needed).
  struct AggResult {
    std::uint64_t extents_retired = 0;  // version records dropped or merged away
    std::uint64_t bytes_flattened = 0;  // payload bytes those records held
  };

  /// Merges all versions <= `upto` into flat non-overlapping extents. Kept
  /// survivors retain their original epochs (merged runs take the max epoch
  /// of the run), so latest_epoch() never inflates past a real write — the
  /// rebuild-resync and DTX-conflict guards that compare against it stay
  /// exact across aggregation.
  AggResult aggregate(Epoch upto, PayloadMode mode);

  /// Total version records held (every fragment of every epoch).
  std::size_t extent_count() const;
  /// Distinct byte ranges in the interval index.
  std::size_t segment_count() const { return segs_.size(); }
  std::uint64_t stored_bytes() const { return stored_bytes_; }

  /// Epoch of the newest extent or full punch (0 if empty). Rebuild resync
  /// uses this to skip akeys the stale replica already holds.
  Epoch latest_epoch() const {
    const Epoch p = full_punches_.empty() ? 0 : full_punches_.back();
    return max_epoch_ > p ? max_epoch_ : p;
  }

  /// Points visibility-probe accounting at an external counter (the owning
  /// container's TreeStats::extent_probes). Each read-side resolution adds
  /// one unit per index seek plus log2(version-stack depth) per overlapped
  /// segment — the polled `vos/extent_probes` telemetry that the endurance
  /// bench tracks per pass. nullptr (the default) disables accounting.
  void bind_probe_counter(std::uint64_t* probes) { probes_ = probes; }

 private:
  struct Version {
    Epoch epoch = 0;
    std::uint64_t seq = 0;  // arrival order among equal epochs (per store)
    bool punch = false;     // range punch: reads as hole above older data
    std::vector<std::byte> data;  // empty, or exactly segment-length bytes
  };
  /// One byte range [start, start+length) with its epoch-sorted version
  /// stack. Every version spans the whole segment: writes split segments at
  /// their boundaries before stacking, so per-byte and per-segment
  /// visibility coincide.
  struct Segment {
    std::uint64_t length = 0;
    std::vector<Version> versions;  // ascending (epoch, seq)
  };

  /// Splits the segment containing offset `x` (if any) so `x` becomes a
  /// segment boundary; version payloads are sliced, conserving byte totals.
  void split_at(std::uint64_t x);
  /// Common write/punch path: stacks one version over [offset, offset+length).
  void apply_range(std::uint64_t offset, std::uint64_t length,
                   std::span<const std::byte> data, Epoch epoch, bool punch, bool payload);
  /// Keeps a segment's stack ascending when a write (e.g. a DTX commit)
  /// lands below the newest stored epoch; equal epochs keep arrival order.
  static void insert_version(Segment& s, Version v);
  /// Newest version with epoch <= `epoch` (nullptr when none).
  static const Version* newest_at(const Segment& s, Epoch epoch);
  Epoch last_full_punch_at(Epoch epoch) const;

  std::map<std::uint64_t, Segment> segs_;  // keyed by segment start offset
  std::vector<Epoch> full_punches_;        // ascending
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t seq_ = 0;   // next arrival stamp
  Epoch max_epoch_ = 0;     // newest extent epoch (full punches tracked apart)
  std::uint64_t* probes_ = nullptr;  // see bind_probe_counter()
};

}  // namespace daosim::vos
