// Versioned value stores for one attribute key (akey):
//   SingleValueStore — one value per epoch (DAOS "single value" records)
//   ArrayStore       — byte-extent records with epoch-resolved visibility
//
// Both keep every version until aggregate() merges epochs, mirroring VOS's
// multi-version design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vos/types.hpp"

namespace daosim::vos {

class SingleValueStore {
 public:
  void put(std::span<const std::byte> value, Epoch epoch, PayloadMode mode);
  void punch(Epoch epoch);

  /// Latest value visible at `epoch`; nullptr if none (or punched).
  /// With PayloadMode::discard, returns an empty-but-present record.
  struct View {
    bool exists = false;
    std::uint64_t size = 0;
    std::span<const std::byte> data{};  // empty in discard mode
  };
  View get(Epoch epoch) const;

  /// Drops versions shadowed at `upto`.
  void aggregate(Epoch upto);

  std::size_t version_count() const { return versions_.size(); }

  /// Epoch of the newest version (0 if empty). Rebuild resync uses this to
  /// skip records the stale replica already holds.
  Epoch latest_epoch() const { return versions_.empty() ? 0 : versions_.back().epoch; }

 private:
  struct Version {
    Epoch epoch;
    bool punched;
    std::uint64_t size;
    std::vector<std::byte> data;
  };
  /// Keeps versions_ ascending when a write (e.g. a DTX commit) lands below
  /// the newest stored epoch; a same-epoch insert replaces in place.
  void insert_sorted(Version v);
  std::vector<Version> versions_;  // ascending epoch
};

class ArrayStore {
 public:
  /// Records a write of `length` bytes at `offset`. `data` may be empty in
  /// discard mode; otherwise data.size() == length.
  void write(std::uint64_t offset, std::uint64_t length, std::span<const std::byte> data,
             Epoch epoch, PayloadMode mode);

  /// Punches (logically zeroes / removes) the byte range at `epoch`.
  void punch_range(std::uint64_t offset, std::uint64_t length, Epoch epoch);
  /// Punches the whole akey at `epoch`: size drops to zero.
  void punch_all(Epoch epoch);

  /// Reads `out.size()` bytes at `offset` as visible at `epoch`. Holes and
  /// punched ranges read as zero. Returns the number of bytes that overlap
  /// written data (the "filled" count).
  std::uint64_t read(std::uint64_t offset, std::span<std::byte> out, Epoch epoch) const;

  /// Like read(), but also reports the per-byte fill state in `mask`
  /// (resized to out.size()). Rebuild uses the mask to merge a pulled image
  /// under bytes the local replica already holds.
  std::uint64_t read_masked(std::uint64_t offset, std::span<std::byte> out,
                            std::vector<bool>& mask, Epoch epoch) const;

  /// Highest written offset+length visible at `epoch` (0 if empty/punched).
  std::uint64_t size(Epoch epoch) const;

  /// Sets mask bits for bytes in [offset, offset + mask.size()) touched by
  /// any extent, range punch, or full punch recorded after `since`. Rebuild
  /// resync uses this to keep bytes the replica wrote after reintegration on
  /// top of the pulled window image. Only sets bits, never clears them.
  void mask_newer_than(std::uint64_t offset, Epoch since, std::vector<bool>& mask) const;

  /// Merges all versions <= `upto` into flat non-overlapping extents.
  void aggregate(Epoch upto, PayloadMode mode);

  std::size_t extent_count() const { return extents_.size(); }
  std::uint64_t stored_bytes() const { return stored_bytes_; }

  /// Epoch of the newest extent or full punch (0 if empty). Rebuild resync
  /// uses this to skip akeys the stale replica already holds.
  Epoch latest_epoch() const {
    const Epoch e = extents_.empty() ? 0 : extents_.back().epoch;
    const Epoch p = full_punches_.empty() ? 0 : full_punches_.back();
    return e > p ? e : p;
  }

 private:
  struct Extent {
    std::uint64_t offset;
    std::uint64_t length;
    Epoch epoch;
    bool punch;  // range punch: reads as hole above older data
    std::vector<std::byte> data;  // empty in discard mode or punch extents
  };
  /// Keeps extents_ ascending when a write (e.g. a DTX commit) lands below
  /// the newest stored epoch; equal epochs preserve arrival order.
  void insert_sorted(Extent e);
  // Ascending epoch order (sorted insert; normal writes append). Visibility
  // is resolved by overlaying extents oldest-to-newest.
  std::vector<Extent> extents_;
  std::vector<Epoch> full_punches_;  // ascending
  std::uint64_t stored_bytes_ = 0;

  Epoch last_full_punch_at(Epoch epoch) const;
};

}  // namespace daosim::vos
