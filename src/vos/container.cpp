#include "vos/container.hpp"

#include <algorithm>

namespace daosim::vos {

VosContainer::ObjectNode& VosContainer::obj(ObjId oid) {
  ++tree_stats_.lookups;
  if (auto* p = objects_.find(oid)) return **p;
  auto node = std::make_unique<ObjectNode>();
  auto* raw = node.get();
  ++tree_stats_.inserts;
  objects_.insert_or_assign(oid, std::move(node));
  return *raw;
}

const VosContainer::ObjectNode* VosContainer::find_obj(ObjId oid) const {
  ++tree_stats_.lookups;
  const auto* p = objects_.find(oid);
  return p != nullptr ? p->get() : nullptr;
}

VosContainer::AkeyNode& VosContainer::akey_node(ObjId oid, const Key& dkey, const Key& akey) {
  return akey_node_in(obj(oid), dkey, akey);
}

VosContainer::AkeyNode& VosContainer::akey_node_in(ObjectNode& o, const Key& dkey,
                                                   const Key& akey) {
  DkeyNode* dk;
  ++tree_stats_.lookups;
  if (auto* p = o.dkeys.find(dkey)) {
    dk = p->get();
  } else {
    auto node = std::make_unique<DkeyNode>();
    dk = node.get();
    ++tree_stats_.inserts;
    o.dkeys.insert_or_assign(dkey, std::move(node));
  }
  ++tree_stats_.lookups;
  if (auto* p = dk->akeys.find(akey)) return **p;
  auto node = std::make_unique<AkeyNode>();
  auto* raw = node.get();
  // Array visibility probes count into this container's stats (the node's
  // address is stable — unique_ptr — and the container is pinned in place).
  raw->arr.bind_probe_counter(&tree_stats_.extent_probes);
  ++tree_stats_.inserts;
  dk->akeys.insert_or_assign(akey, std::move(node));
  return *raw;
}

const VosContainer::AkeyNode* VosContainer::find_akey(ObjId oid, const Key& dkey,
                                                      const Key& akey) const {
  const auto* o = find_obj(oid);
  if (o == nullptr) return nullptr;
  return find_akey_in(*o, dkey, akey);
}

const VosContainer::AkeyNode* VosContainer::find_akey_in(const ObjectNode& o, const Key& dkey,
                                                         const Key& akey) const {
  ++tree_stats_.lookups;
  const auto* dk = const_cast<ObjectNode&>(o).dkeys.find(dkey);
  if (dk == nullptr) return nullptr;
  ++tree_stats_.lookups;
  const auto* ak = (*dk)->akeys.find(akey);
  return ak != nullptr ? ak->get() : nullptr;
}

void VosContainer::array_write(ObjId oid, const Key& dkey, const Key& akey,
                               std::uint64_t offset, std::uint64_t length,
                               std::span<const std::byte> data, Epoch epoch) {
  AkeyNode& a = akey_node(oid, dkey, akey);
  DAOSIM_REQUIRE(!a.has_sv, "akey already holds a single value");
  a.has_arr = true;
  a.arr.write(offset, length, data, epoch, mode_);
  logical_bytes_ += length;
}

std::uint64_t VosContainer::array_read(ObjId oid, const Key& dkey, const Key& akey,
                                       std::uint64_t offset, std::span<std::byte> out,
                                       Epoch epoch) const {
  const AkeyNode* a = find_akey(oid, dkey, akey);
  if (a == nullptr || !a->has_arr) {
    std::fill(out.begin(), out.end(), std::byte{0});
    return 0;
  }
  return a->arr.read(offset, out, epoch);
}

void VosContainer::array_write_extents(ObjId oid, const Key& akey,
                                       std::span<const ArrayExtent> extents,
                                       std::span<const std::byte> payload) {
  if (extents.empty()) return;
  ObjectNode& o = obj(oid);  // one object-table descent for the whole batch
  for (const ArrayExtent& e : extents) {
    AkeyNode& a = akey_node_in(o, e.dkey, akey);
    DAOSIM_REQUIRE(!a.has_sv, "akey already holds a single value");
    a.has_arr = true;
    std::span<const std::byte> data;
    if (!payload.empty()) data = payload.subspan(std::size_t(e.payload_off), std::size_t(e.length));
    // One epoch per extent: versioning identical to N separate updates.
    a.arr.write(e.offset, e.length, data, next_epoch(), mode_);
    logical_bytes_ += e.length;
  }
}

std::uint64_t VosContainer::array_read_extents(ObjId oid, const Key& akey,
                                               std::span<const ArrayExtent> extents,
                                               std::span<std::byte> payload,
                                               std::span<std::uint64_t> fills,
                                               Epoch epoch) const {
  DAOSIM_REQUIRE(fills.size() == extents.size(), "per-extent fill slots mismatch");
  if (!payload.empty()) std::fill(payload.begin(), payload.end(), std::byte{0});
  std::uint64_t total = 0;
  const ObjectNode* o = find_obj(oid);
  for (std::size_t i = 0; i < extents.size(); ++i) {
    const ArrayExtent& e = extents[i];
    const AkeyNode* a = o != nullptr ? find_akey_in(*o, e.dkey, akey) : nullptr;
    std::uint64_t filled = 0;
    if (a != nullptr && a->has_arr) {
      if (!payload.empty()) {
        auto out = payload.subspan(std::size_t(e.payload_off), std::size_t(e.length));
        filled = a->arr.read(e.offset, out, epoch);
      } else {
        // Discard mode: fill state from extent metadata only.
        const std::uint64_t sz = a->arr.size(epoch);
        filled = sz > e.offset ? std::min(e.length, sz - e.offset) : 0;
      }
    }
    fills[i] = filled;
    total += filled;
  }
  return total;
}

std::uint64_t VosContainer::array_read_masked(ObjId oid, const Key& dkey, const Key& akey,
                                              std::uint64_t offset, std::span<std::byte> out,
                                              std::vector<bool>& mask, Epoch epoch) const {
  const AkeyNode* a = find_akey(oid, dkey, akey);
  if (a == nullptr || !a->has_arr) {
    std::fill(out.begin(), out.end(), std::byte{0});
    mask.assign(out.size(), false);
    return 0;
  }
  return a->arr.read_masked(offset, out, mask, epoch);
}

std::uint64_t VosContainer::array_size(ObjId oid, const Key& dkey, const Key& akey,
                                       Epoch epoch) const {
  const AkeyNode* a = find_akey(oid, dkey, akey);
  return (a != nullptr && a->has_arr) ? a->arr.size(epoch) : 0;
}

void VosContainer::kv_put(ObjId oid, const Key& dkey, const Key& akey,
                          std::span<const std::byte> value, Epoch epoch) {
  AkeyNode& a = akey_node(oid, dkey, akey);
  DAOSIM_REQUIRE(!a.has_arr, "akey already holds array records");
  a.has_sv = true;
  a.sv.put(value, epoch, mode_ == PayloadMode::discard ? PayloadMode::store : mode_);
  logical_bytes_ += value.size();
}

SingleValueStore::View VosContainer::kv_get(ObjId oid, const Key& dkey, const Key& akey,
                                            Epoch epoch) const {
  const AkeyNode* a = find_akey(oid, dkey, akey);
  if (a == nullptr || !a->has_sv) return {};
  return a->sv.get(epoch);
}

Epoch VosContainer::kv_latest_epoch(ObjId oid, const Key& dkey, const Key& akey) const {
  const AkeyNode* a = find_akey(oid, dkey, akey);
  return (a != nullptr && a->has_sv) ? a->sv.latest_epoch() : 0;
}

void VosContainer::array_mask_newer(ObjId oid, const Key& dkey, const Key& akey,
                                    std::uint64_t offset, Epoch since,
                                    std::vector<bool>& mask) const {
  const AkeyNode* a = find_akey(oid, dkey, akey);
  if (a != nullptr && a->has_arr) a->arr.mask_newer_than(offset, since, mask);
}

void VosContainer::punch_akey(ObjId oid, const Key& dkey, const Key& akey, Epoch epoch) {
  auto* a = const_cast<AkeyNode*>(find_akey(oid, dkey, akey));
  if (a == nullptr) return;
  if (a->has_sv) a->sv.punch(epoch);
  if (a->has_arr) a->arr.punch_all(epoch);
}

void VosContainer::punch_dkey(ObjId oid, const Key& dkey, Epoch epoch) {
  auto* o = const_cast<ObjectNode*>(find_obj(oid));
  if (o == nullptr) return;
  auto* dk = o->dkeys.find(dkey);
  if (dk == nullptr) return;
  for (auto it = (*dk)->akeys.begin(); it != (*dk)->akeys.end(); ++it) {
    AkeyNode& a = *it.value();
    if (a.has_sv) a.sv.punch(epoch);
    if (a.has_arr) a.arr.punch_all(epoch);
  }
}

void VosContainer::punch_object(ObjId oid, Epoch epoch) {
  auto* o = const_cast<ObjectNode*>(find_obj(oid));
  if (o == nullptr) return;
  for (auto dit = o->dkeys.begin(); dit != o->dkeys.end(); ++dit) {
    for (auto ait = dit.value()->akeys.begin(); ait != dit.value()->akeys.end(); ++ait) {
      AkeyNode& a = *ait.value();
      if (a.has_sv) a.sv.punch(epoch);
      if (a.has_arr) a.arr.punch_all(epoch);
    }
  }
  o->array_end_hint = 0;
}

bool VosContainer::akey_visible(const AkeyNode& a, Epoch epoch) {
  if (a.has_sv && a.sv.get(epoch).exists) return true;
  return a.has_arr && a.arr.size(epoch) > 0;
}

std::vector<Key> VosContainer::list_dkeys(ObjId oid, Epoch epoch) const {
  std::vector<Key> out;
  const auto* o = find_obj(oid);
  if (o == nullptr) return out;
  auto& dkeys = const_cast<ObjectNode*>(o)->dkeys;
  for (auto it = dkeys.begin(); it != dkeys.end(); ++it) {
    auto& akeys = it.value()->akeys;
    for (auto ait = akeys.begin(); ait != akeys.end(); ++ait) {
      if (akey_visible(*ait.value(), epoch)) {
        out.push_back(it.key());
        break;
      }
    }
  }
  return out;
}

std::vector<Key> VosContainer::list_akeys(ObjId oid, const Key& dkey, Epoch epoch) const {
  std::vector<Key> out;
  const auto* o = find_obj(oid);
  if (o == nullptr) return out;
  auto* dk = const_cast<ObjectNode*>(o)->dkeys.find(dkey);
  if (dk == nullptr) return out;
  for (auto it = (*dk)->akeys.begin(); it != (*dk)->akeys.end(); ++it) {
    if (akey_visible(*it.value(), epoch)) out.push_back(it.key());
  }
  return out;
}

std::vector<ObjId> VosContainer::list_objects() const {
  std::vector<ObjId> out;
  auto& objects = const_cast<BPlusTree<ObjId, std::unique_ptr<ObjectNode>>&>(objects_);
  for (auto it = objects.begin(); it != objects.end(); ++it) out.push_back(it.key());
  return out;
}

void VosContainer::note_array_end(ObjId oid, std::uint64_t global_end) {
  ObjectNode& o = obj(oid);
  o.array_end_hint = std::max(o.array_end_hint, global_end);
}

std::uint64_t VosContainer::array_end_hint(ObjId oid) const {
  const auto* o = find_obj(oid);
  return o != nullptr ? o->array_end_hint : 0;
}

VosContainer::AggregateResult VosContainer::aggregate(Epoch upto) {
  // Undecided transactions pin aggregation: a prepared entry may still
  // commit at its (older) epoch, which must not land below merged state.
  const Epoch dtx_floor = dtx_min_prepared_epoch();
  if (dtx_floor != kEpochMax && dtx_floor > 0) upto = std::min(upto, dtx_floor - 1);
  AggregateResult total;
  total.upto = upto;
  auto& objects = objects_;
  for (auto oit = objects.begin(); oit != objects.end(); ++oit) {
    auto& dkeys = oit.value()->dkeys;
    for (auto dit = dkeys.begin(); dit != dkeys.end(); ++dit) {
      auto& akeys = dit.value()->akeys;
      for (auto ait = akeys.begin(); ait != akeys.end(); ++ait) {
        AkeyNode& a = *ait.value();
        if (a.has_sv) a.sv.aggregate(upto);
        if (a.has_arr) {
          // The store reports retired extents directly — no before/after
          // extent_count() rescan per record.
          const ArrayStore::AggResult r = a.arr.aggregate(upto, mode_);
          tree_stats_.extent_merges += r.extents_retired;
          total.extents_retired += r.extents_retired;
          total.bytes_flattened += r.bytes_flattened;
        }
      }
    }
  }
  return total;
}

std::vector<VosContainer::ExportRecord> VosContainer::export_object(ObjId oid,
                                                                    Epoch min_epoch) const {
  std::vector<ExportRecord> out;
  for (const Key& dkey : list_dkeys(oid, kEpochMax)) {
    for (const Key& akey : list_akeys(oid, dkey, kEpochMax)) {
      const AkeyNode* a = find_akey(oid, dkey, akey);
      if (a == nullptr) continue;
      if (a->has_arr && a->arr.latest_epoch() > min_epoch) {
        const std::uint64_t size = a->arr.size(kEpochMax);
        if (size == 0) continue;
        ExportRecord rec{dkey, akey, /*is_array=*/true, size, {}};
        if (mode_ == PayloadMode::store) {
          rec.data.resize(size);
          a->arr.read(0, rec.data, kEpochMax);
        }
        out.push_back(std::move(rec));
      } else if (a->has_sv && a->sv.latest_epoch() > min_epoch) {
        const auto view = a->sv.get(kEpochMax);
        if (!view.exists) continue;
        ExportRecord rec{dkey, akey, /*is_array=*/false, view.size, {}};
        rec.data.assign(view.data.begin(), view.data.end());
        out.push_back(std::move(rec));
      }
    }
  }
  return out;
}

std::uint64_t VosContainer::stored_bytes() const {
  std::uint64_t total = 0;
  auto& objects = const_cast<BPlusTree<ObjId, std::unique_ptr<ObjectNode>>&>(objects_);
  for (auto oit = objects.begin(); oit != objects.end(); ++oit) {
    auto& dkeys = oit.value()->dkeys;
    for (auto dit = dkeys.begin(); dit != dkeys.end(); ++dit) {
      auto& akeys = dit.value()->akeys;
      for (auto ait = akeys.begin(); ait != akeys.end(); ++ait) {
        if (ait.value()->has_arr) total += ait.value()->arr.stored_bytes();
      }
    }
  }
  return total;
}

}  // namespace daosim::vos
