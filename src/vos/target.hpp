// VosTarget: the per-target storage instance (one VOS pool shard in DAOS
// terms). A target owns one VosContainer per container UUID; the engine
// routes object shard I/O here.
#pragma once

#include <map>
#include <vector>

#include "vos/container.hpp"

namespace daosim::vos {

class VosTarget {
 public:
  explicit VosTarget(PayloadMode mode) : mode_(mode) {}

  /// Opens (creating on first touch) the container's shard on this target.
  /// The returned reference is stable for the target's lifetime: containers_
  /// is a node-based std::map, so a concurrent first-touch of a different
  /// container never relocates existing shards. (It was an unordered_map by
  /// value, where any insert could rehash and move every VosContainer out
  /// from under engine coroutines suspended on media I/O.)
  VosContainer& container(Uuid uuid) {
    // try_emplace constructs the shard in place: VosContainer is pinned
    // (not movable) because its array stores bind probe counters to the
    // container's own stats block.
    return containers_.try_emplace(uuid, mode_).first->second;
  }

  const VosContainer* find_container(Uuid uuid) const {
    auto it = containers_.find(uuid);
    return it == containers_.end() ? nullptr : &it->second;
  }

  bool destroy_container(Uuid uuid) { return containers_.erase(uuid) > 0; }

  std::size_t container_count() const { return containers_.size(); }
  PayloadMode payload_mode() const { return mode_; }

  /// Container UUIDs in sorted order (the rebuild scanner needs a
  /// deterministic walk; the ordered map gives it for free).
  std::vector<Uuid> list_containers() const {
    std::vector<Uuid> out;
    out.reserve(containers_.size());
    for (const auto& [uuid, c] : containers_) out.push_back(uuid);
    return out;
  }

  std::uint64_t stored_bytes() const {
    std::uint64_t total = 0;
    for (const auto& [uuid, c] : containers_) total += c.stored_bytes();
    return total;
  }
  std::uint64_t logical_bytes_written() const {
    std::uint64_t total = 0;
    for (const auto& [uuid, c] : containers_) total += c.logical_bytes_written();
    return total;
  }

  /// Index-operation counters summed over this target's container shards.
  VosContainer::TreeStats tree_stats() const {
    VosContainer::TreeStats total;
    for (const auto& [uuid, c] : containers_) total += c.tree_stats();
    return total;
  }

 private:
  PayloadMode mode_;
  std::map<Uuid, VosContainer> containers_;
};

}  // namespace daosim::vos
