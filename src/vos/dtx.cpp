// VosContainer's distributed-transaction tables (vos_dtx equivalent): the
// prepared table stages a transaction's writes invisibly and locks its keys;
// the decision table makes phase-2 RPCs idempotent and survives for resolve
// queries after crashes. Staged ops apply through the regular put/write
// paths at the transaction's epoch, so committed state is indistinguishable
// from plain writes (rebuild, aggregation and reads need no DTX awareness).
#include <algorithm>

#include "vos/container.hpp"

namespace daosim::vos {

Epoch VosContainer::akey_latest_epoch(ObjId oid, const Key& dkey, const Key& akey) const {
  const AkeyNode* a = find_akey(oid, dkey, akey);
  if (a == nullptr) return 0;
  Epoch e = 0;
  if (a->has_sv) e = std::max(e, a->sv.latest_epoch());
  if (a->has_arr) e = std::max(e, a->arr.latest_epoch());
  return e;
}

Errno VosContainer::dtx_prepare(DtxEntry entry) {
  const auto dit = dtx_decisions_.find(entry.id);
  if (dit != dtx_decisions_.end()) {
    // A retried prepare raced past the decision (lost reply): committed means
    // the work is already durable; aborted stays aborted.
    return dit->second == DtxState::committed ? Errno::ok : Errno::tx_restart;
  }
  if (dtx_prepared_.contains(entry.id)) return Errno::ok;  // duplicate prepare
  for (const DtxOp& op : entry.ops) {
    // Write-write conflict with another in-flight transaction: every
    // prepared op holds a lock on its (oid, dkey, akey).
    for (const auto& [id, other] : dtx_prepared_) {
      for (const DtxOp& held : other.ops) {
        if (held.oid == op.oid && held.dkey == op.dkey && held.akey == op.akey) {
          return Errno::tx_restart;
        }
      }
    }
    // Lost-update conflict: a committed record newer than the transaction's
    // epoch would be shadowed by committing under it. Equal epochs conflict
    // too: hlc_client keys client epochs by only 7 node bits, so two clients
    // whose node ids collide mod 128 can mint the same epoch within one
    // virtual nanosecond — committing would silently overwrite the earlier
    // value (insert_sorted replaces same-epoch records) instead of losing
    // the race detectably.
    if (akey_latest_epoch(op.oid, op.dkey, op.akey) >= entry.epoch) return Errno::tx_restart;
  }
  dtx_prepared_.emplace(entry.id, std::move(entry));
  return Errno::ok;
}

void VosContainer::apply_dtx_op(const DtxOp& op, Epoch epoch) {
  if (op.single_value) {
    kv_put(op.oid, op.dkey, op.akey,
           op.data != nullptr ? std::span<const std::byte>(*op.data)
                              : std::span<const std::byte>{},
           epoch);
    return;
  }
  array_write(op.oid, op.dkey, op.akey, op.offset, op.length,
              op.data != nullptr ? std::span<const std::byte>(*op.data)
                                 : std::span<const std::byte>{},
              epoch);
  if (op.array_end_hint > 0) note_array_end(op.oid, op.array_end_hint);
}

bool VosContainer::dtx_commit(const DtxId& id) {
  const auto dit = dtx_decisions_.find(id);
  if (dit != dtx_decisions_.end()) return dit->second == DtxState::committed;
  dtx_decisions_[id] = DtxState::committed;
  const auto pit = dtx_prepared_.find(id);
  if (pit != dtx_prepared_.end()) {
    const DtxEntry entry = std::move(pit->second);
    dtx_prepared_.erase(pit);
    // The staged epoch may sit below epochs the clock issued since prepare
    // (the value stores insert sorted); the clock itself never goes back.
    observe_time(entry.epoch);
    for (const DtxOp& op : entry.ops) apply_dtx_op(op, entry.epoch);
  }
  return true;
}

void VosContainer::dtx_abort(const DtxId& id) {
  const auto dit = dtx_decisions_.find(id);
  if (dit != dtx_decisions_.end()) return;  // sticky: a decision never flips
  dtx_decisions_[id] = DtxState::aborted;
  dtx_prepared_.erase(id);
}

DtxState VosContainer::dtx_state(const DtxId& id) const {
  if (dtx_prepared_.contains(id)) return DtxState::prepared;
  const auto dit = dtx_decisions_.find(id);
  return dit != dtx_decisions_.end() ? dit->second : DtxState::unknown;
}

const DtxEntry* VosContainer::dtx_find_prepared(const DtxId& id) const {
  const auto it = dtx_prepared_.find(id);
  return it != dtx_prepared_.end() ? &it->second : nullptr;
}

std::vector<DtxId> VosContainer::dtx_prepared_ids() const {
  std::vector<DtxId> ids;
  ids.reserve(dtx_prepared_.size());
  for (const auto& [id, entry] : dtx_prepared_) ids.push_back(id);
  return ids;
}

Epoch VosContainer::dtx_min_prepared_epoch() const {
  Epoch floor = kEpochMax;
  for (const auto& [id, entry] : dtx_prepared_) floor = std::min(floor, entry.epoch);
  return floor;
}

}  // namespace daosim::vos
