#include "vos/value_store.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace daosim::vos {

// ---------------------------------------------------------------------------
// SingleValueStore

// Stores are epoch-sorted, and writes normally arrive in epoch order — but a
// DTX commit applies at the transaction's prepare-time epoch, which can sit
// below versions the shard's clock has since issued. Sorted insertion keeps
// every read/aggregate path (all of which scan ascending epochs) correct.
void SingleValueStore::insert_sorted(Version v) {
  auto pos = std::lower_bound(versions_.begin(), versions_.end(), v.epoch,
                              [](const Version& a, Epoch e) { return a.epoch < e; });
  if (pos != versions_.end() && pos->epoch == v.epoch) {
    *pos = std::move(v);  // same-epoch overwrite keeps one version per epoch
  } else {
    versions_.insert(pos, std::move(v));
  }
}

void SingleValueStore::put(std::span<const std::byte> value, Epoch epoch, PayloadMode mode) {
  Version v{epoch, false, value.size(), {}};
  if (mode == PayloadMode::store) v.data.assign(value.begin(), value.end());
  insert_sorted(std::move(v));
}

void SingleValueStore::punch(Epoch epoch) { insert_sorted(Version{epoch, true, 0, {}}); }

SingleValueStore::View SingleValueStore::get(Epoch epoch) const {
  // Versions are sorted by epoch: find the last one <= epoch.
  const Version* best = nullptr;
  for (const auto& v : versions_) {
    if (v.epoch > epoch) break;
    best = &v;
  }
  if (best == nullptr || best->punched) return {};
  return View{true, best->size, std::span<const std::byte>(best->data)};
}

void SingleValueStore::aggregate(Epoch upto) {
  // Keep the newest version <= upto plus everything > upto.
  const Version* keep = nullptr;
  for (const auto& v : versions_) {
    if (v.epoch > upto) break;
    keep = &v;
  }
  if (keep == nullptr) return;
  std::vector<Version> out;
  for (auto& v : versions_) {
    if (&v == keep || v.epoch > upto) out.push_back(std::move(v));
  }
  versions_ = std::move(out);
}

// ---------------------------------------------------------------------------
// ArrayStore

Epoch ArrayStore::last_full_punch_at(Epoch epoch) const {
  Epoch last = 0;
  for (Epoch p : full_punches_) {
    if (p > epoch) break;
    last = p;
  }
  return last;
}

void ArrayStore::write(std::uint64_t offset, std::uint64_t length,
                       std::span<const std::byte> data, Epoch epoch, PayloadMode mode) {
  if (length == 0) return;
  Extent e{offset, length, epoch, false, {}};
  // An empty span with store mode means "no payload shipped" (callers doing
  // metadata-only I/O against a storing container): the extent reads as zeros.
  if (mode == PayloadMode::store && !data.empty()) {
    DAOSIM_REQUIRE(data.size() == length, "payload size mismatch (%zu vs %llu)", data.size(),
                   static_cast<unsigned long long>(length));
    e.data.assign(data.begin(), data.end());
    stored_bytes_ += length;
  }
  insert_sorted(std::move(e));
}

// See SingleValueStore::insert_sorted: DTX commits can land below the clock.
// upper_bound keeps arrival order among equal-epoch extents, so the overlay
// ("later versions overwrite earlier") stays identical for in-order writers.
void ArrayStore::insert_sorted(Extent e) {
  if (extents_.empty() || extents_.back().epoch <= e.epoch) {
    extents_.push_back(std::move(e));
    return;
  }
  auto pos = std::upper_bound(extents_.begin(), extents_.end(), e.epoch,
                              [](Epoch ep, const Extent& x) { return ep < x.epoch; });
  extents_.insert(pos, std::move(e));
}

void ArrayStore::punch_range(std::uint64_t offset, std::uint64_t length, Epoch epoch) {
  if (length == 0) return;
  insert_sorted(Extent{offset, length, epoch, true, {}});
}

void ArrayStore::punch_all(Epoch epoch) {
  auto pos = std::lower_bound(full_punches_.begin(), full_punches_.end(), epoch);
  if (pos == full_punches_.end() || *pos != epoch) full_punches_.insert(pos, epoch);
}

std::uint64_t ArrayStore::read(std::uint64_t offset, std::span<std::byte> out,
                               Epoch epoch) const {
  std::vector<bool> filled;
  return read_masked(offset, out, filled, epoch);
}

std::uint64_t ArrayStore::read_masked(std::uint64_t offset, std::span<std::byte> out,
                                      std::vector<bool>& filled, Epoch epoch) const {
  std::fill(out.begin(), out.end(), std::byte{0});
  filled.assign(out.size(), false);
  if (out.empty()) return 0;
  const Epoch floor = last_full_punch_at(epoch);
  const std::uint64_t end = offset + out.size();

  // Overlay extents oldest-to-newest: later versions overwrite earlier ones.
  // Track fill state per byte to report the filled count.
  for (const auto& e : extents_) {
    if (e.epoch > epoch || e.epoch <= floor) continue;
    const std::uint64_t lo = std::max(offset, e.offset);
    const std::uint64_t hi = std::min(end, e.offset + e.length);
    if (lo >= hi) continue;
    for (std::uint64_t b = lo; b < hi; ++b) {
      const std::size_t oi = std::size_t(b - offset);
      if (e.punch) {
        out[oi] = std::byte{0};
        filled[oi] = false;
      } else {
        out[oi] = e.data.empty() ? std::byte{0} : e.data[std::size_t(b - e.offset)];
        filled[oi] = true;
      }
    }
  }
  return std::uint64_t(std::count(filled.begin(), filled.end(), true));
}

void ArrayStore::mask_newer_than(std::uint64_t offset, Epoch since,
                                 std::vector<bool>& mask) const {
  if (mask.empty()) return;
  if (!full_punches_.empty() && full_punches_.back() > since) {
    std::fill(mask.begin(), mask.end(), true);
    return;
  }
  const std::uint64_t end = offset + mask.size();
  for (const auto& e : extents_) {
    if (e.epoch <= since) continue;
    const std::uint64_t lo = std::max(offset, e.offset);
    const std::uint64_t hi = std::min(end, e.offset + e.length);
    for (std::uint64_t b = lo; b < hi; ++b) mask[std::size_t(b - offset)] = true;
  }
}

std::uint64_t ArrayStore::size(Epoch epoch) const {
  const Epoch floor = last_full_punch_at(epoch);
  std::uint64_t max_end = 0;
  for (const auto& e : extents_) {
    if (e.epoch > epoch || e.epoch <= floor || e.punch) continue;
    max_end = std::max(max_end, e.offset + e.length);
  }
  return max_end;
}

void ArrayStore::aggregate(Epoch upto, PayloadMode mode) {
  const Epoch floor = last_full_punch_at(upto);
  // Elementary-segment resolution over all boundaries of extents <= upto.
  std::vector<std::uint64_t> cuts;
  std::vector<const Extent*> old_extents;
  std::vector<Extent> keep;
  for (auto& e : extents_) {
    if (e.epoch > upto) {
      keep.push_back(std::move(e));
    } else if (e.epoch > floor) {
      old_extents.push_back(&e);
      cuts.push_back(e.offset);
      cuts.push_back(e.offset + e.length);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<Extent> merged;
  for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
    const std::uint64_t lo = cuts[s], hi = cuts[s + 1];
    // Newest covering extent wins for the whole elementary segment.
    const Extent* top = nullptr;
    for (const Extent* e : old_extents) {
      if (e->offset <= lo && e->offset + e->length >= hi) top = e;  // ascending epoch
    }
    if (top == nullptr || top->punch) continue;
    const bool has_payload = mode == PayloadMode::store && !top->data.empty();
    // Coalesce with the previous merged extent when contiguous and both
    // sides carry (or both lack) payload bytes.
    if (!merged.empty() && merged.back().offset + merged.back().length == lo &&
        (merged.back().data.size() == merged.back().length) == has_payload) {
      auto& prev = merged.back();
      prev.length += hi - lo;
      if (has_payload) {
        const auto* src = top->data.data() + (lo - top->offset);
        prev.data.insert(prev.data.end(), src, src + (hi - lo));
      }
      continue;
    }
    Extent m{lo, hi - lo, upto, false, {}};
    if (has_payload) {
      m.data.assign(top->data.begin() + std::ptrdiff_t(lo - top->offset),
                    top->data.begin() + std::ptrdiff_t(hi - top->offset));
    }
    merged.push_back(std::move(m));
  }

  stored_bytes_ = 0;
  extents_.clear();
  for (auto& e : merged) {
    stored_bytes_ += e.data.size();
    extents_.push_back(std::move(e));
  }
  for (auto& e : keep) {
    stored_bytes_ += e.data.size();
    extents_.push_back(std::move(e));
  }
  // Full punches <= upto are now baked into the merged extents.
  std::erase_if(full_punches_, [&](Epoch p) { return p <= upto; });
}

}  // namespace daosim::vos
