#include "vos/value_store.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace daosim::vos {

// ---------------------------------------------------------------------------
// SingleValueStore

// Stores are epoch-sorted, and writes normally arrive in epoch order — but a
// DTX commit applies at the transaction's prepare-time epoch, which can sit
// below versions the shard's clock has since issued. Sorted insertion keeps
// every read/aggregate path (all of which scan ascending epochs) correct.
void SingleValueStore::insert_sorted(Version v) {
  auto pos = std::lower_bound(versions_.begin(), versions_.end(), v.epoch,
                              [](const Version& a, Epoch e) { return a.epoch < e; });
  if (pos != versions_.end() && pos->epoch == v.epoch) {
    *pos = std::move(v);  // same-epoch overwrite keeps one version per epoch
  } else {
    versions_.insert(pos, std::move(v));
  }
}

void SingleValueStore::put(std::span<const std::byte> value, Epoch epoch, PayloadMode mode) {
  Version v{epoch, false, value.size(), {}};
  if (mode == PayloadMode::store) v.data.assign(value.begin(), value.end());
  insert_sorted(std::move(v));
}

void SingleValueStore::punch(Epoch epoch) { insert_sorted(Version{epoch, true, 0, {}}); }

SingleValueStore::View SingleValueStore::get(Epoch epoch) const {
  // Versions are sorted by epoch: find the last one <= epoch.
  const Version* best = nullptr;
  for (const auto& v : versions_) {
    if (v.epoch > epoch) break;
    best = &v;
  }
  if (best == nullptr || best->punched) return {};
  return View{true, best->size, std::span<const std::byte>(best->data)};
}

void SingleValueStore::aggregate(Epoch upto) {
  // Keep the newest version <= upto plus everything > upto.
  const Version* keep = nullptr;
  for (const auto& v : versions_) {
    if (v.epoch > upto) break;
    keep = &v;
  }
  if (keep == nullptr) return;
  std::vector<Version> out;
  for (auto& v : versions_) {
    if (&v == keep || v.epoch > upto) out.push_back(std::move(v));
  }
  versions_ = std::move(out);
}

// ---------------------------------------------------------------------------
// ArrayStore

Epoch ArrayStore::last_full_punch_at(Epoch epoch) const {
  // full_punches_ is ascending: last one <= epoch.
  auto it = std::upper_bound(full_punches_.begin(), full_punches_.end(), epoch);
  return it == full_punches_.begin() ? 0 : *std::prev(it);
}

void ArrayStore::split_at(std::uint64_t x) {
  auto it = segs_.upper_bound(x);
  if (it == segs_.begin()) return;
  --it;
  const std::uint64_t start = it->first;
  Segment& s = it->second;
  if (start == x || start + s.length <= x) return;
  const std::uint64_t left_len = x - start;
  Segment right;
  right.length = s.length - left_len;
  right.versions.reserve(s.versions.size());
  for (auto& v : s.versions) {
    Version rv{v.epoch, v.seq, v.punch, {}};
    if (!v.data.empty()) {
      rv.data.assign(v.data.begin() + std::ptrdiff_t(left_len), v.data.end());
      v.data.resize(left_len);
    }
    right.versions.push_back(std::move(rv));
  }
  s.length = left_len;
  segs_.emplace_hint(std::next(it), x, std::move(right));
}

void ArrayStore::insert_version(Segment& s, Version v) {
  if (s.versions.empty() || s.versions.back().epoch <= v.epoch) {
    s.versions.push_back(std::move(v));
    return;
  }
  // A below-top insert (DTX commit at its prepare-time epoch): position by
  // epoch; upper_bound keeps arrival order among equal epochs, so the
  // resolved visibility stays identical for in-order writers.
  auto pos = std::upper_bound(s.versions.begin(), s.versions.end(), v.epoch,
                              [](Epoch e, const Version& x) { return e < x.epoch; });
  s.versions.insert(pos, std::move(v));
}

void ArrayStore::apply_range(std::uint64_t offset, std::uint64_t length,
                             std::span<const std::byte> data, Epoch epoch, bool punch,
                             bool payload) {
  split_at(offset);
  const std::uint64_t end = offset + length;
  split_at(end);
  const std::uint64_t seq = seq_++;
  std::uint64_t pos = offset;
  auto it = segs_.lower_bound(offset);
  while (pos < end) {
    if (it != segs_.end() && it->first == pos) {
      // Existing segment, fully inside [offset, end) after the splits.
      Segment& s = it->second;
      Version v{epoch, seq, punch, {}};
      if (payload) {
        const auto* src = data.data() + (pos - offset);
        v.data.assign(src, src + s.length);
        stored_bytes_ += s.length;
      }
      insert_version(s, std::move(v));
      pos += s.length;
      ++it;
    } else {
      // Gap up to the next segment (or to the end of the write).
      const std::uint64_t next =
          it == segs_.end() ? end : std::min<std::uint64_t>(end, it->first);
      Segment s;
      s.length = next - pos;
      Version v{epoch, seq, punch, {}};
      if (payload) {
        const auto* src = data.data() + (pos - offset);
        v.data.assign(src, src + s.length);
        stored_bytes_ += s.length;
      }
      s.versions.push_back(std::move(v));
      it = std::next(segs_.emplace_hint(it, pos, std::move(s)));
      pos = next;
    }
  }
  if (epoch > max_epoch_) max_epoch_ = epoch;
}

void ArrayStore::write(std::uint64_t offset, std::uint64_t length,
                       std::span<const std::byte> data, Epoch epoch, PayloadMode mode) {
  if (length == 0) return;
  // An empty span with store mode means "no payload shipped" (callers doing
  // metadata-only I/O against a storing container): the extent reads as zeros.
  const bool payload = mode == PayloadMode::store && !data.empty();
  if (payload) {
    DAOSIM_REQUIRE(data.size() == length, "payload size mismatch (%zu vs %llu)", data.size(),
                   static_cast<unsigned long long>(length));
  }
  apply_range(offset, length, data, epoch, /*punch=*/false, payload);
}

void ArrayStore::punch_range(std::uint64_t offset, std::uint64_t length, Epoch epoch) {
  if (length == 0) return;
  apply_range(offset, length, {}, epoch, /*punch=*/true, /*payload=*/false);
}

void ArrayStore::punch_all(Epoch epoch) {
  auto pos = std::lower_bound(full_punches_.begin(), full_punches_.end(), epoch);
  if (pos == full_punches_.end() || *pos != epoch) full_punches_.insert(pos, epoch);
}

const ArrayStore::Version* ArrayStore::newest_at(const Segment& s, Epoch epoch) {
  auto it = std::upper_bound(s.versions.begin(), s.versions.end(), epoch,
                             [](Epoch e, const Version& v) { return e < v.epoch; });
  if (it == s.versions.begin()) return nullptr;
  return &*std::prev(it);
}

std::uint64_t ArrayStore::read(std::uint64_t offset, std::span<std::byte> out,
                               Epoch epoch) const {
  std::vector<bool> filled;
  return read_masked(offset, out, filled, epoch);
}

std::uint64_t ArrayStore::read_masked(std::uint64_t offset, std::span<std::byte> out,
                                      std::vector<bool>& filled, Epoch epoch) const {
  std::fill(out.begin(), out.end(), std::byte{0});
  filled.assign(out.size(), false);
  if (out.empty()) return 0;
  const Epoch floor = last_full_punch_at(epoch);
  const std::uint64_t end = offset + out.size();
  std::uint64_t probes = 1;  // the ordered-index seek
  std::uint64_t count = 0;

  auto it = segs_.upper_bound(offset);
  if (it != segs_.begin()) --it;  // predecessor may extend into the range
  for (; it != segs_.end() && it->first < end; ++it) {
    const std::uint64_t start = it->first;
    const Segment& s = it->second;
    const std::uint64_t lo = std::max(offset, start);
    const std::uint64_t hi = std::min(end, start + s.length);
    if (lo >= hi) continue;
    probes += 1 + std::uint64_t(std::bit_width(s.versions.size()));
    const Version* v = newest_at(s, epoch);
    if (v == nullptr || v->epoch <= floor || v->punch) continue;
    for (std::uint64_t b = lo; b < hi; ++b) {
      const std::size_t oi = std::size_t(b - offset);
      out[oi] = v->data.empty() ? std::byte{0} : v->data[std::size_t(b - start)];
      filled[oi] = true;
    }
    count += hi - lo;
  }
  if (probes_ != nullptr) *probes_ += probes;
  return count;
}

void ArrayStore::mask_newer_than(std::uint64_t offset, Epoch since,
                                 std::vector<bool>& mask) const {
  if (mask.empty()) return;
  if (!full_punches_.empty() && full_punches_.back() > since) {
    std::fill(mask.begin(), mask.end(), true);
    return;
  }
  const std::uint64_t end = offset + mask.size();
  std::uint64_t probes = 1;
  auto it = segs_.upper_bound(offset);
  if (it != segs_.begin()) --it;
  for (; it != segs_.end() && it->first < end; ++it) {
    const std::uint64_t lo = std::max(offset, it->first);
    const std::uint64_t hi = std::min(end, it->first + it->second.length);
    if (lo >= hi) continue;
    ++probes;
    // The segment's newest version is versions.back(); every version spans
    // the whole segment, so one comparison decides all its bytes.
    if (it->second.versions.back().epoch <= since) continue;
    for (std::uint64_t b = lo; b < hi; ++b) mask[std::size_t(b - offset)] = true;
  }
  if (probes_ != nullptr) *probes_ += probes;
}

std::uint64_t ArrayStore::size(Epoch epoch) const {
  const Epoch floor = last_full_punch_at(epoch);
  std::uint64_t probes = 1;
  std::uint64_t max_end = 0;
  // Scan from the highest offset down: the first segment holding any
  // non-punch version in (floor, epoch] decides the size.
  for (auto it = segs_.rbegin(); it != segs_.rend() && max_end == 0; ++it) {
    const Segment& s = it->second;
    probes += 1 + std::uint64_t(std::bit_width(s.versions.size()));
    auto v = std::upper_bound(s.versions.begin(), s.versions.end(), epoch,
                              [](Epoch e, const Version& x) { return e < x.epoch; });
    while (v != s.versions.begin()) {
      --v;
      if (v->epoch <= floor) break;
      if (!v->punch) {
        max_end = it->first + s.length;
        break;
      }
    }
  }
  if (probes_ != nullptr) *probes_ += probes;
  return max_end;
}

std::size_t ArrayStore::extent_count() const {
  std::size_t n = 0;
  for (const auto& [start, s] : segs_) n += s.versions.size();
  return n;
}

ArrayStore::AggResult ArrayStore::aggregate(Epoch upto, PayloadMode mode) {
  (void)mode;  // payload-ness is carried per version; nothing to decide here
  AggResult res;
  const Epoch floor = last_full_punch_at(upto);

  // Pass 1 — per segment, drop every version <= upto except the newest
  // survivor in (floor, upto]. A punch survivor (or one shadowed by a full
  // punch) vanishes too: nobody may read below `upto` once aggregated, so a
  // hole needs no record. Survivors keep their original (epoch, seq).
  for (auto it = segs_.begin(); it != segs_.end();) {
    Segment& s = it->second;
    auto above = std::upper_bound(s.versions.begin(), s.versions.end(), upto,
                                  [](Epoch e, const Version& v) { return e < v.epoch; });
    const Version* top = nullptr;
    if (above != s.versions.begin()) {
      const auto t = std::prev(above);
      if (t->epoch > floor && !t->punch) top = &*t;
    }
    std::vector<Version> kept;
    kept.reserve(std::size_t(s.versions.end() - above) + (top != nullptr ? 1 : 0));
    for (auto v = s.versions.begin(); v != above; ++v) {
      if (&*v == top) {
        kept.push_back(std::move(*v));
      } else {
        ++res.extents_retired;
        res.bytes_flattened += v->data.size();
        stored_bytes_ -= v->data.size();
      }
    }
    for (auto v = above; v != s.versions.end(); ++v) kept.push_back(std::move(*v));
    s.versions = std::move(kept);
    it = s.versions.empty() ? segs_.erase(it) : std::next(it);
  }

  // Pass 2 — coalesce adjacent fully-aggregated segments: contiguous,
  // single-version, epoch <= upto, matching payload-ness. The merged record
  // takes the max (epoch, seq) of the run — never above a real write, so
  // latest_epoch()/mask_newer_than() stay exact for everything above `upto`.
  for (auto it = segs_.begin(); it != segs_.end();) {
    auto next = std::next(it);
    if (next == segs_.end()) break;
    Segment& a = it->second;
    Segment& b = next->second;
    if (it->first + a.length == next->first && a.versions.size() == 1 &&
        b.versions.size() == 1 && a.versions[0].epoch <= upto &&
        b.versions[0].epoch <= upto && !a.versions[0].punch && !b.versions[0].punch &&
        a.versions[0].data.empty() == b.versions[0].data.empty()) {
      Version& va = a.versions[0];
      Version& vb = b.versions[0];
      va.epoch = std::max(va.epoch, vb.epoch);
      va.seq = std::max(va.seq, vb.seq);
      if (!va.data.empty()) va.data.insert(va.data.end(), vb.data.begin(), vb.data.end());
      a.length += b.length;
      ++res.extents_retired;
      segs_.erase(next);
      continue;  // keep extending the same run
    }
    it = next;
  }

  // Full punches <= upto are baked into the surviving records.
  std::erase_if(full_punches_, [&](Epoch p) { return p <= upto; });

  // Recompute the exact newest-extent epoch: aggregation may have dropped
  // the previous maximum (e.g. a punch top).
  max_epoch_ = 0;
  for (const auto& [start, s] : segs_) {
    max_epoch_ = std::max(max_epoch_, s.versions.back().epoch);
  }
  return res;
}

}  // namespace daosim::vos
