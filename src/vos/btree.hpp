// In-memory B+ tree, the index structure underlying the Versioned Object
// Store (DAOS keeps its object/dkey/akey indices in btrees on persistent
// memory; we keep them in DRAM but preserve the structure).
//
// Properties: sorted iteration via linked leaves, O(log n) point ops,
// move-only value support, and a validate() invariant checker used by the
// property tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace daosim::vos {

template <typename K, typename V, typename Compare = std::less<K>, std::size_t MaxKeys = 15>
class BPlusTree {
  static_assert(MaxKeys >= 3, "fanout too small");
  static constexpr std::size_t kMinKeys = MaxKeys / 2;

  struct Node {
    explicit Node(bool l) : leaf(l) {}
    virtual ~Node() = default;
    bool leaf;
    std::vector<K> keys;
  };
  struct LeafNode final : Node {
    LeafNode() : Node(true) {}
    std::vector<V> vals;
    LeafNode* next = nullptr;
    LeafNode* prev = nullptr;
  };
  struct InternalNode final : Node {
    InternalNode() : Node(false) {}
    std::vector<std::unique_ptr<Node>> kids;  // kids.size() == keys.size() + 1
  };

 public:
  BPlusTree() : root_(std::make_unique<LeafNode>()) {}
  BPlusTree(BPlusTree&&) noexcept = default;
  BPlusTree& operator=(BPlusTree&&) noexcept = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<LeafNode>();
    size_ = 0;
  }

  V* find(const K& key) {
    LeafNode* leaf = descend(key);
    const std::size_t i = lower_idx(leaf->keys, key);
    if (i < leaf->keys.size() && equal(leaf->keys[i], key)) return &leaf->vals[i];
    return nullptr;
  }
  const V* find(const K& key) const { return const_cast<BPlusTree*>(this)->find(key); }

  /// Inserts or overwrites; returns true if a new key was inserted.
  template <typename U>
  bool insert_or_assign(const K& key, U&& value) {
    bool inserted = false;
    auto split = insert_rec(root_.get(), key, std::forward<U>(value), inserted);
    if (split) {
      auto new_root = std::make_unique<InternalNode>();
      new_root->keys.push_back(std::move(split->sep));
      new_root->kids.push_back(std::move(root_));
      new_root->kids.push_back(std::move(split->right));
      root_ = std::move(new_root);
    }
    if (inserted) ++size_;
    audit_path(key);
    return inserted;
  }

  bool erase(const K& key) {
    const bool erased = erase_rec(root_.get(), key);
    if (!root_->leaf) {
      auto* r = static_cast<InternalNode*>(root_.get());
      if (r->kids.size() == 1) {
        root_ = std::move(r->kids.front());
      }
    }
    if (erased) --size_;
    audit_path(key);
    return erased;
  }

  class iterator {
   public:
    iterator() = default;
    bool valid() const { return leaf_ != nullptr && idx_ < leaf_->keys.size(); }
    const K& key() const { return leaf_->keys[idx_]; }
    V& value() const { return leaf_->vals[idx_]; }
    iterator& operator++() {
      if (++idx_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
      return *this;
    }
    bool operator==(const iterator& o) const {
      if (!valid() && !o.valid()) return true;
      return leaf_ == o.leaf_ && idx_ == o.idx_;
    }

   private:
    friend class BPlusTree;
    iterator(LeafNode* l, std::size_t i) : leaf_(l), idx_(i) {
      if (leaf_ != nullptr && idx_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }
    LeafNode* leaf_ = nullptr;
    std::size_t idx_ = 0;
  };

  iterator begin() {
    Node* n = root_.get();
    while (!n->leaf) n = static_cast<InternalNode*>(n)->kids.front().get();
    return iterator(static_cast<LeafNode*>(n), 0);
  }
  iterator end() { return iterator(); }

  /// First element with key >= `key`.
  iterator lower_bound(const K& key) {
    LeafNode* leaf = descend(key);
    return iterator(leaf, lower_idx(leaf->keys, key));
  }

  /// Checks every structural invariant; throws DaosimError on violation.
  void validate() const {
    int depth = -1;
    std::size_t counted = 0;
    validate_rec(root_.get(), 0, depth, nullptr, nullptr, counted, root_.get());
    DAOSIM_REQUIRE(counted == size_, "size mismatch: counted %zu recorded %zu", counted, size_);
    // Leaf chain must be globally sorted and cover all elements.
    const Node* n = root_.get();
    while (!n->leaf) n = static_cast<const InternalNode*>(n)->kids.front().get();
    auto* leaf = static_cast<const LeafNode*>(n);
    std::size_t chain = 0;
    const K* prev = nullptr;
    while (leaf != nullptr) {
      for (const auto& k : leaf->keys) {
        if (prev != nullptr) DAOSIM_REQUIRE(cmp_(*prev, k), "leaf chain out of order");
        prev = &k;
        ++chain;
      }
      leaf = leaf->next;
    }
    DAOSIM_REQUIRE(chain == size_, "leaf chain covers %zu of %zu", chain, size_);
  }

 private:
  struct Split {
    K sep;
    std::unique_ptr<Node> right;
  };

  bool equal(const K& a, const K& b) const { return !cmp_(a, b) && !cmp_(b, a); }

  std::size_t lower_idx(const std::vector<K>& keys, const K& key) const {
    return std::size_t(std::lower_bound(keys.begin(), keys.end(), key, cmp_) - keys.begin());
  }
  /// Routing index inside an internal node: keys equal to a separator go right.
  std::size_t route_idx(const std::vector<K>& keys, const K& key) const {
    return std::size_t(std::upper_bound(keys.begin(), keys.end(), key, cmp_) - keys.begin());
  }

  LeafNode* descend(const K& key) const {
    Node* n = root_.get();
    while (!n->leaf) {
      auto* in = static_cast<InternalNode*>(n);
      n = in->kids[route_idx(in->keys, key)].get();
    }
    return static_cast<LeafNode*>(n);
  }

  template <typename U>
  std::optional<Split> insert_rec(Node* n, const K& key, U&& value, bool& inserted) {
    if (n->leaf) {
      auto* leaf = static_cast<LeafNode*>(n);
      const std::size_t i = lower_idx(leaf->keys, key);
      if (i < leaf->keys.size() && equal(leaf->keys[i], key)) {
        leaf->vals[i] = std::forward<U>(value);
        inserted = false;
        return std::nullopt;
      }
      leaf->keys.insert(leaf->keys.begin() + std::ptrdiff_t(i), key);
      leaf->vals.insert(leaf->vals.begin() + std::ptrdiff_t(i), std::forward<U>(value));
      inserted = true;
      if (leaf->keys.size() <= MaxKeys) return std::nullopt;
      // Split the leaf in half; separator is the right half's first key.
      auto right = std::make_unique<LeafNode>();
      const std::size_t half = leaf->keys.size() / 2;
      right->keys.assign(std::make_move_iterator(leaf->keys.begin() + std::ptrdiff_t(half)),
                         std::make_move_iterator(leaf->keys.end()));
      right->vals.assign(std::make_move_iterator(leaf->vals.begin() + std::ptrdiff_t(half)),
                         std::make_move_iterator(leaf->vals.end()));
      leaf->keys.resize(half);
      leaf->vals.resize(half);
      right->next = leaf->next;
      right->prev = leaf;
      if (right->next != nullptr) right->next->prev = right.get();
      leaf->next = right.get();
      return Split{right->keys.front(), std::move(right)};
    }

    auto* in = static_cast<InternalNode*>(n);
    const std::size_t ci = route_idx(in->keys, key);
    auto split = insert_rec(in->kids[ci].get(), key, std::forward<U>(value), inserted);
    if (!split) return std::nullopt;
    in->keys.insert(in->keys.begin() + std::ptrdiff_t(ci), std::move(split->sep));
    in->kids.insert(in->kids.begin() + std::ptrdiff_t(ci) + 1, std::move(split->right));
    if (in->keys.size() <= MaxKeys) return std::nullopt;
    // Split the internal node; the middle key moves up.
    auto right = std::make_unique<InternalNode>();
    const std::size_t mid = in->keys.size() / 2;
    K sep = std::move(in->keys[mid]);
    right->keys.assign(std::make_move_iterator(in->keys.begin() + std::ptrdiff_t(mid) + 1),
                       std::make_move_iterator(in->keys.end()));
    right->kids.assign(std::make_move_iterator(in->kids.begin() + std::ptrdiff_t(mid) + 1),
                       std::make_move_iterator(in->kids.end()));
    in->keys.resize(mid);
    in->kids.resize(mid + 1);
    return Split{std::move(sep), std::move(right)};
  }

  bool erase_rec(Node* n, const K& key) {
    if (n->leaf) {
      auto* leaf = static_cast<LeafNode*>(n);
      const std::size_t i = lower_idx(leaf->keys, key);
      if (i >= leaf->keys.size() || !equal(leaf->keys[i], key)) return false;
      leaf->keys.erase(leaf->keys.begin() + std::ptrdiff_t(i));
      leaf->vals.erase(leaf->vals.begin() + std::ptrdiff_t(i));
      return true;
    }
    auto* in = static_cast<InternalNode*>(n);
    const std::size_t ci = route_idx(in->keys, key);
    const bool erased = erase_rec(in->kids[ci].get(), key);
    if (erased) fix_underflow(in, ci);
    return erased;
  }

  static std::size_t node_size(const Node* n) { return n->keys.size(); }

  void fix_underflow(InternalNode* parent, std::size_t ci) {
    Node* child = parent->kids[ci].get();
    if (node_size(child) >= kMinKeys) return;

    Node* left = ci > 0 ? parent->kids[ci - 1].get() : nullptr;
    Node* right = ci + 1 < parent->kids.size() ? parent->kids[ci + 1].get() : nullptr;

    if (left != nullptr && node_size(left) > kMinKeys) {
      borrow_from_left(parent, ci);
    } else if (right != nullptr && node_size(right) > kMinKeys) {
      borrow_from_right(parent, ci);
    } else if (left != nullptr) {
      merge(parent, ci - 1);
    } else if (right != nullptr) {
      merge(parent, ci);
    }
  }

  void borrow_from_left(InternalNode* parent, std::size_t ci) {
    Node* child = parent->kids[ci].get();
    Node* left = parent->kids[ci - 1].get();
    if (child->leaf) {
      auto* c = static_cast<LeafNode*>(child);
      auto* l = static_cast<LeafNode*>(left);
      c->keys.insert(c->keys.begin(), std::move(l->keys.back()));
      c->vals.insert(c->vals.begin(), std::move(l->vals.back()));
      l->keys.pop_back();
      l->vals.pop_back();
      parent->keys[ci - 1] = c->keys.front();
    } else {
      auto* c = static_cast<InternalNode*>(child);
      auto* l = static_cast<InternalNode*>(left);
      c->keys.insert(c->keys.begin(), std::move(parent->keys[ci - 1]));
      parent->keys[ci - 1] = std::move(l->keys.back());
      l->keys.pop_back();
      c->kids.insert(c->kids.begin(), std::move(l->kids.back()));
      l->kids.pop_back();
    }
  }

  void borrow_from_right(InternalNode* parent, std::size_t ci) {
    Node* child = parent->kids[ci].get();
    Node* right = parent->kids[ci + 1].get();
    if (child->leaf) {
      auto* c = static_cast<LeafNode*>(child);
      auto* r = static_cast<LeafNode*>(right);
      c->keys.push_back(std::move(r->keys.front()));
      c->vals.push_back(std::move(r->vals.front()));
      r->keys.erase(r->keys.begin());
      r->vals.erase(r->vals.begin());
      parent->keys[ci] = r->keys.front();
    } else {
      auto* c = static_cast<InternalNode*>(child);
      auto* r = static_cast<InternalNode*>(right);
      c->keys.push_back(std::move(parent->keys[ci]));
      parent->keys[ci] = std::move(r->keys.front());
      r->keys.erase(r->keys.begin());
      c->kids.push_back(std::move(r->kids.front()));
      r->kids.erase(r->kids.begin());
    }
  }

  /// Merges kids[i+1] into kids[i] and removes separator i.
  void merge(InternalNode* parent, std::size_t i) {
    Node* ln = parent->kids[i].get();
    Node* rn = parent->kids[i + 1].get();
    if (ln->leaf) {
      auto* l = static_cast<LeafNode*>(ln);
      auto* r = static_cast<LeafNode*>(rn);
      std::move(r->keys.begin(), r->keys.end(), std::back_inserter(l->keys));
      std::move(r->vals.begin(), r->vals.end(), std::back_inserter(l->vals));
      l->next = r->next;
      if (r->next != nullptr) r->next->prev = l;
    } else {
      auto* l = static_cast<InternalNode*>(ln);
      auto* r = static_cast<InternalNode*>(rn);
      l->keys.push_back(std::move(parent->keys[i]));
      std::move(r->keys.begin(), r->keys.end(), std::back_inserter(l->keys));
      std::move(r->kids.begin(), r->kids.end(), std::back_inserter(l->kids));
    }
    parent->keys.erase(parent->keys.begin() + std::ptrdiff_t(i));
    parent->kids.erase(parent->kids.begin() + std::ptrdiff_t(i) + 1);
  }

  /// Audit-build hook (DAOSIM_AUDIT): after a mutation of `key`, re-descend
  /// its root-to-leaf path — exactly the nodes the mutation touched — and
  /// re-check key ordering and node occupancy. O(log n) per call, compiled
  /// out entirely in normal builds.
  void audit_path(const K& key) const {
    if constexpr (kAuditEnabled) {
      const Node* n = root_.get();
      bool is_root = true;
      while (true) {
        audit_node(n, is_root);
        if (n->leaf) break;
        auto* in = static_cast<const InternalNode*>(n);
        n = in->kids[route_idx(in->keys, key)].get();
        is_root = false;
      }
    } else {
      (void)key;
    }
  }

  void audit_node(const Node* n, bool is_root) const {
    for (std::size_t i = 1; i < n->keys.size(); ++i) {
      DAOSIM_REQUIRE(cmp_(n->keys[i - 1], n->keys[i]), "audit: keys not strictly sorted");
    }
    DAOSIM_REQUIRE(n->keys.size() <= MaxKeys, "audit: node overflow (%zu > %zu)",
                   n->keys.size(), MaxKeys);
    if (!is_root) {
      DAOSIM_REQUIRE(n->keys.size() >= kMinKeys, "audit: node underflow (%zu < %zu)",
                     n->keys.size(), kMinKeys);
    }
    if (n->leaf) {
      DAOSIM_REQUIRE(static_cast<const LeafNode*>(n)->vals.size() == n->keys.size(),
                     "audit: leaf key/value count mismatch");
    } else {
      DAOSIM_REQUIRE(static_cast<const InternalNode*>(n)->kids.size() == n->keys.size() + 1,
                     "audit: child count mismatch");
    }
  }

  void validate_rec(const Node* n, int level, int& leaf_depth, const K* lo, const K* hi,
                    std::size_t& counted, const Node* root) const {
    for (std::size_t i = 1; i < n->keys.size(); ++i) {
      DAOSIM_REQUIRE(cmp_(n->keys[i - 1], n->keys[i]), "keys not strictly sorted");
    }
    if (lo != nullptr && !n->keys.empty()) {
      DAOSIM_REQUIRE(!cmp_(n->keys.front(), *lo), "key below subtree lower bound");
    }
    if (hi != nullptr && !n->keys.empty()) {
      DAOSIM_REQUIRE(cmp_(n->keys.back(), *hi), "key above subtree upper bound");
    }
    if (n->leaf) {
      if (leaf_depth < 0) leaf_depth = level;
      DAOSIM_REQUIRE(leaf_depth == level, "leaves at unequal depth");
      if (n != root) {
        DAOSIM_REQUIRE(n->keys.size() >= kMinKeys, "leaf underflow (%zu)", n->keys.size());
      }
      DAOSIM_REQUIRE(n->keys.size() <= MaxKeys, "leaf overflow");
      counted += n->keys.size();
      return;
    }
    auto* in = static_cast<const InternalNode*>(n);
    DAOSIM_REQUIRE(in->kids.size() == in->keys.size() + 1, "child count mismatch");
    if (n != root) {
      DAOSIM_REQUIRE(n->keys.size() >= kMinKeys, "internal underflow");
    }
    DAOSIM_REQUIRE(n->keys.size() <= MaxKeys, "internal overflow");
    for (std::size_t i = 0; i < in->kids.size(); ++i) {
      const K* sub_lo = i == 0 ? lo : &in->keys[i - 1];
      const K* sub_hi = i == in->keys.size() ? hi : &in->keys[i];
      validate_rec(in->kids[i].get(), level + 1, leaf_depth, sub_lo, sub_hi, counted, root);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace daosim::vos
