// DTX value types: the per-shard state a distributed transaction leaves in
// VOS. A prepared entry stages the transaction's writes (invisible to reads
// and locking its keys against concurrent transactions) until the two-phase
// commit decides; the decision table makes commit/abort idempotent and
// answers resolve queries after a crash. See docs/dtx.md.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "vos/types.hpp"

namespace daosim::vos {

/// Epochs double as hybrid-logical-clock timestamps: the upper bits carry
/// virtual nanoseconds, the low bits a logical sub-counter. Engines run each
/// shard's epoch clock forward to hlc_base(now) before issuing write epochs
/// (VosContainer::observe_time), so next_epoch() counts within the current
/// nanosecond's logical range. That puts every shard's epochs — and the
/// client-chosen transaction/snapshot epochs below — on one comparable
/// timeline: an epoch cut is a consistent cross-shard snapshot.
constexpr unsigned kHlcLogicalBits = 8;
constexpr Epoch hlc_base(std::uint64_t now_ns) { return Epoch(now_ns) << kHlcLogicalBits; }

/// Client-chosen epochs (DTX commit epochs, snapshot epochs) occupy the
/// upper half of the nanosecond's logical range, keyed by the client node,
/// so they cannot collide with the engines' next_epoch() stream (which
/// stays in the lower half unless a shard issues >127 epochs within one
/// virtual nanosecond).
constexpr Epoch hlc_client(std::uint64_t now_ns, std::uint64_t node) {
  return hlc_base(now_ns) | 0x80 | (node & 0x7F);
}

/// Transaction identifier: the coordinating client's fabric node plus a
/// per-client sequence number (unique cluster-wide, like a DTX UUID).
struct DtxId {
  std::uint64_t client = 0;
  std::uint64_t seq = 0;
  auto operator<=>(const DtxId&) const = default;
};

/// unknown = this shard has never seen the transaction (or already pruned
/// it); prepared = staged, awaiting the leader's decision.
enum class DtxState : std::uint8_t { unknown = 0, prepared, committed, aborted };

/// One staged write. Offsets/lengths are dkey-relative (array records);
/// single values carry the payload only.
struct DtxOp {
  ObjId oid;
  Key dkey;
  Key akey;
  bool single_value = true;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t array_end_hint = 0;  // global array high-water mark (0 = none)
  std::shared_ptr<std::vector<std::byte>> data;  // null in discard mode
};

/// The prepared-table record for one transaction on one shard.
struct DtxEntry {
  DtxId id;
  Epoch epoch = 0;           // commit epoch chosen by the coordinator
  std::uint32_t leader = 0;  // pool-map target index of the leader shard
  std::uint64_t prepared_at = 0;  // virtual ns at prepare (orphan reaping)
  std::vector<DtxOp> ops;
};

}  // namespace daosim::vos
