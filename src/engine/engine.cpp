#include "engine/engine.hpp"

#include <algorithm>
#include <cinttypes>

namespace daosim::engine {

using net::Body;
using net::Reply;
using net::Request;

Engine::Engine(net::RpcDomain& domain, net::NodeId node, media::DcpmmInterleaveSet& media,
               EngineConfig cfg)
    : ep_(domain, node),
      sched_(domain.scheduler()),
      media_(media),
      cfg_(cfg),
      metrics_(strfmt("engine/%u", node)) {
  DAOSIM_REQUIRE(cfg_.targets > 0, "engine needs at least one target");
  // Per-target sustained rates (xstream-bound); the shared interleave-set
  // pipe still caps the socket aggregate.
  for (std::uint32_t i = 0; i < cfg_.targets; ++i) {
    targets_.push_back(std::make_unique<Target>(sched_, cfg_.payload, cfg_.target_read_bw,
                                                cfg_.target_write_bw));
    targets_.back()->idx = i;
    targets_.back()->queue_depth =
        &metrics_.find_or_create<telemetry::StatGauge>(strfmt("target/%u/queue_depth", i));
  }
  ep_.set_telemetry(&metrics_);
  ep_.set_map_version_source([this] { return cached_map_version_; });
  update_extents_ = &metrics_.find_or_create<telemetry::DurationHistogram>(
      "rpc/obj_update/extents_per_rpc");
  fetch_extents_ = &metrics_.find_or_create<telemetry::DurationHistogram>(
      "rpc/obj_fetch/extents_per_rpc");
  metrics_.add_probe("vos/tree_lookups", [this] {
    std::uint64_t n = 0;
    for (const auto& t : targets_) n += t->vos.tree_stats().lookups;
    return n;
  });
  metrics_.add_probe("vos/tree_inserts", [this] {
    std::uint64_t n = 0;
    for (const auto& t : targets_) n += t->vos.tree_stats().inserts;
    return n;
  });
  metrics_.add_probe("vos/extent_merges", [this] {
    std::uint64_t n = 0;
    for (const auto& t : targets_) n += t->vos.tree_stats().extent_merges;
    return n;
  });
  metrics_.add_probe("vos/extent_probes", [this] {
    std::uint64_t n = 0;
    for (const auto& t : targets_) n += t->vos.tree_stats().extent_probes;
    return n;
  });
  metrics_.add_probe("svc/updates", [this] { return updates_; });
  metrics_.add_probe("svc/fetches", [this] { return fetches_; });
  metrics_.add_probe("svc/stream_misses", [this] { return cache_misses_; });
  ep_.register_handler(kOpObjUpdate, [this](Request r) { return on_update(std::move(r)); });
  ep_.register_handler(kOpObjFetch, [this](Request r) { return on_fetch(std::move(r)); });
  ep_.register_handler(kOpObjEnumDkeys,
                       [this](Request r) { return on_enum_dkeys(std::move(r)); });
  ep_.register_handler(kOpObjEnumAkeys,
                       [this](Request r) { return on_enum_akeys(std::move(r)); });
  ep_.register_handler(kOpObjPunch, [this](Request r) { return on_punch(std::move(r)); });
  ep_.register_handler(kOpObjQuery, [this](Request r) { return on_query(std::move(r)); });
}

Engine::Target& Engine::target_for(std::uint32_t idx) {
  DAOSIM_REQUIRE(idx < targets_.size(), "target index %u out of range", idx);
  return *targets_[idx];
}

namespace {
/// Poll period while an epoch-bounded read waits out a prepared transaction.
/// Decisions normally land within a round trip; the worst case (crashed
/// coordinator, dead leader) is bounded by the DTX reaper's settle paths.
constexpr sim::Time kDtxReadRetryTick = 10 * sim::kMs;
}  // namespace

sim::CoTask<void> Engine::dtx_read_barrier(Target& t, vos::Uuid cont, vos::Epoch epoch) {
  // A transaction prepared below the read epoch is invisible now, but its
  // commit would apply at that older epoch and retroactively appear in later
  // reads of the same snapshot. Wait until every such entry settles (the
  // reaper guarantees each one eventually commits or aborts), so a given
  // epoch always reads the same bytes. Plain reads (kEpochMax) keep
  // read-committed semantics and never wait.
  if (epoch == vos::kEpochMax) co_return;
  for (;;) {
    // Floor copied out as a value: no container reference spans the delay.
    const vos::Epoch floor = t.vos.container(cont).dtx_min_prepared_epoch();
    if (floor > epoch) co_return;
    co_await sched_.delay(kDtxReadRetryTick);
  }
}

telemetry::DurationHistogram* Engine::svc_enter(Target& t, const char* op) {
  // Queue depth as seen by an arriving request: callers already holding or
  // waiting on the target's xstream.
  t.queue_depth->sample(double(t.xstream.waiting()));
  return &metrics_.find_or_create<telemetry::DurationHistogram>(
      std::string("svc/") + op + "/time_ns");
}

void Engine::stall_target(std::uint32_t idx, sim::Time duration) {
  Target& t = target_for(idx);  // targets_ holds unique_ptrs: the ref is stable
  // &t and this outlive the frame: targets_ owns t by unique_ptr and the
  // Engine owns the scheduler's workload for the whole run.
  sched_.spawn([&t, duration, this]() -> sim::CoTask<void> {  // daosim-check: allow(ref-capture-spawn): Engine and unique_ptr target outlive the run
    co_await t.xstream.acquire();
    co_await sched_.delay(duration);
    t.xstream.release();
  });
}

sim::Time Engine::stream_context_touch(Target& t, vos::Uuid cont, vos::ObjId oid,
                                       bool write) {
  const auto key = std::make_pair(cont, oid);
  auto it = std::find(t.stream_lru.begin(), t.stream_lru.end(), key);
  if (it != t.stream_lru.end()) {
    t.stream_lru.erase(it);
    t.stream_lru.push_back(key);
    return 0;
  }
  ++cache_misses_;
  t.stream_lru.push_back(key);
  if (t.stream_lru.size() > cfg_.stream_contexts) t.stream_lru.pop_front();
  return write ? cfg_.stream_switch_write : cfg_.stream_switch_read;
}

sim::CoTask<void> Engine::media_write(Target& t, std::uint64_t bytes, sim::TraceContext ctx) {
  const sim::TraceContext media_ctx = ctx.child(sched_.alloc_span_id());
  const sim::Time t0 = sched_.now();
  // Target slice and socket pipe are charged concurrently: the slice models
  // the xstream's DIMM-channel share, the pipe the socket aggregate.
  std::vector<sim::CoTask<void>> stages;
  stages.push_back([](sim::SharedBandwidth& bw, std::uint64_t b) -> sim::CoTask<void> {
    co_await bw.transfer(b);
  }(t.write_slice, bytes));
  stages.push_back(media_.write(bytes));
  co_await sim::when_all(sched_, std::move(stages));
  if (sim::SpanSink* sink = sched_.span_sink()) {
    sink->span("media", strfmt("write %" PRIu64 "B", bytes), ep_.node(), t.idx, t0,
               sched_.now(), media_ctx);
  }
}

sim::CoTask<void> Engine::media_read(Target& t, std::uint64_t bytes, sim::TraceContext ctx) {
  const sim::TraceContext media_ctx = ctx.child(sched_.alloc_span_id());
  const sim::Time t0 = sched_.now();
  std::vector<sim::CoTask<void>> stages;
  stages.push_back([](sim::SharedBandwidth& bw, std::uint64_t b) -> sim::CoTask<void> {
    co_await bw.transfer(b);
  }(t.read_slice, bytes));
  stages.push_back(media_.read(bytes));
  co_await sim::when_all(sched_, std::move(stages));
  if (sim::SpanSink* sink = sched_.span_sink()) {
    sink->span("media", strfmt("read %" PRIu64 "B", bytes), ep_.node(), t.idx, t0,
               sched_.now(), media_ctx);
  }
}

sim::CoTask<void> Engine::xstream_exec(Target& t, sim::Time cpu, sim::TraceContext ctx) {
  const sim::TraceContext queue_ctx = ctx.child(sched_.alloc_span_id());
  const sim::TraceContext vos_ctx = ctx.child(sched_.alloc_span_id());
  const sim::Time t0 = sched_.now();
  co_await t.xstream.acquire();
  const sim::Time t1 = sched_.now();
  if (sim::SpanSink* sink = sched_.span_sink()) {
    sink->span("queue", strfmt("target %u wait", t.idx), ep_.node(), t.idx, t0, t1, queue_ctx);
  }
  co_await sched_.delay(cpu);
  t.xstream.release();
  if (sim::SpanSink* sink = sched_.span_sink()) {
    sink->span("vos", strfmt("target %u cpu", t.idx), ep_.node(), t.idx, t1, sched_.now(),
               vos_ctx);
  }
}

sim::CoTask<void> Engine::rebuild_read(std::uint32_t idx, std::uint64_t bytes,
                                       sim::TraceContext ctx) {
  Target& t = target_for(idx);
  co_await xstream_exec(t, cfg_.fetch_cpu, ctx);
  co_await media_read(t, bytes + 64, ctx);
}

sim::CoTask<void> Engine::rebuild_write(std::uint32_t idx, std::uint64_t bytes,
                                        sim::TraceContext ctx) {
  Target& t = target_for(idx);
  co_await xstream_exec(t, cfg_.update_cpu, ctx);
  co_await media_write(t, bytes + 64, ctx);
}

sim::CoTask<net::Reply> Engine::on_update(net::Request req) {
  auto& r = req.body.get<ObjUpdateReq>();
  Target& t = target_for(r.target);
  ++updates_;
  const std::size_t nex = r.extents.empty() ? 1 : r.extents.size();
  update_extents_->record(sim::Time(nex));
  const sim::Time svc_t0 = sched_.now();
  telemetry::DurationHistogram* svc = svc_enter(t, "update");

  // A stream-context miss occupies the target's xstream (serialised): a
  // target fed from many distinct objects loses throughput, not just latency.
  // A batched request pays one queue entry and one context touch; only the
  // marginal per-descriptor CPU scales with the extent count.
  const sim::Time sw = stream_context_touch(t, r.cont, r.oid, /*write=*/true);
  co_await xstream_exec(t, cfg_.update_cpu + sim::Time(nex - 1) * cfg_.update_cpu_extent + sw,
                        req.ctx);

  if (!r.extents.empty()) {
    DAOSIM_REQUIRE(r.type == RecordType::array, "batched update must be an array op");
    std::uint64_t total = 0;
    std::vector<vos::VosContainer::ArrayExtent> exts;
    exts.reserve(r.extents.size());
    for (const IoExtent& e : r.extents) {
      exts.push_back({e.dkey, e.offset, e.length, e.payload_off});
      total += e.length;
    }
    // Records + per-extent tree-node writes.
    co_await media_write(t, total + 64 * nex, req.ctx);
    // Shard lookup deliberately after the last suspension: never hold a
    // storage reference across a media await (suspension-safety audit).
    vos::VosContainer& cont = t.vos.container(r.cont);
    cont.observe_time(vos::hlc_base(sched_.now()));
    std::span<const std::byte> payload;
    if (r.data != nullptr) payload = std::span<const std::byte>(*r.data);
    cont.array_write_extents(r.oid, r.akey, exts, payload);
    if (r.array_end_hint > 0) cont.note_array_end(r.oid, r.array_end_hint);
    svc->record(sched_.now() - svc_t0);
    co_return Reply{Errno::ok, kObjRpcHeader, {}};
  }

  co_await media_write(t, r.length + 64, req.ctx);  // record + tree-node write

  vos::VosContainer& cont = t.vos.container(r.cont);
  if (r.cond_insert && r.type == RecordType::single_value &&
      cont.kv_get(r.oid, r.dkey, r.akey, vos::kEpochMax).exists) {
    svc->record(sched_.now() - svc_t0);
    co_return Reply{Errno::exists, kObjRpcHeader, {}};
  }
  cont.observe_time(vos::hlc_base(sched_.now()));
  const vos::Epoch epoch = cont.next_epoch();
  std::span<const std::byte> data;
  if (r.data != nullptr) data = std::span<const std::byte>(*r.data);
  if (r.type == RecordType::array) {
    cont.array_write(r.oid, r.dkey, r.akey, r.offset, r.length, data, epoch);
    if (r.array_end_hint > 0) cont.note_array_end(r.oid, r.array_end_hint);
  } else {
    cont.kv_put(r.oid, r.dkey, r.akey, data, epoch);
  }
  svc->record(sched_.now() - svc_t0);
  co_return Reply{Errno::ok, kObjRpcHeader, {}};
}

sim::CoTask<net::Reply> Engine::on_fetch(net::Request req) {
  auto& r = req.body.get<ObjFetchReq>();
  Target& t = target_for(r.target);
  ++fetches_;
  const std::size_t nex = r.extents.empty() ? 1 : r.extents.size();
  fetch_extents_->record(sim::Time(nex));
  co_await dtx_read_barrier(t, r.cont, r.epoch);
  const sim::Time svc_t0 = sched_.now();
  telemetry::DurationHistogram* svc = svc_enter(t, "fetch");

  const sim::Time sw = stream_context_touch(t, r.cont, r.oid, /*write=*/false);
  co_await xstream_exec(t, cfg_.fetch_cpu + sim::Time(nex - 1) * cfg_.fetch_cpu_extent + sw,
                        req.ctx);

  ObjFetchResp resp;
  std::uint64_t reply_bytes = 0;
  if (!r.extents.empty()) {
    DAOSIM_REQUIRE(r.type == RecordType::array, "batched fetch must be an array op");
    std::uint64_t total = 0;
    std::vector<vos::VosContainer::ArrayExtent> exts;
    exts.reserve(r.extents.size());
    for (const IoExtent& e : r.extents) {
      exts.push_back({e.dkey, e.offset, e.length, e.payload_off});
      total += e.length;
    }
    co_await media_read(t, total + 64 * nex, req.ctx);
    // Shard lookup after the last suspension (see on_update).
    vos::VosContainer& cont = t.vos.container(r.cont);
    resp.fills.resize(r.extents.size());
    std::span<std::byte> payload;
    if (cfg_.payload == vos::PayloadMode::store) {
      resp.data = std::make_shared<std::vector<std::byte>>(total);
      payload = *resp.data;
    }
    resp.filled = cont.array_read_extents(r.oid, r.akey, exts, payload, resp.fills, r.epoch);
    resp.exists = resp.filled > 0;
    reply_bytes = total + std::uint64_t(nex - 1) * kExtentDescBytes;
    svc->record(sched_.now() - svc_t0);
    co_return Reply{Errno::ok, kObjRpcHeader + reply_bytes, Body::make(std::move(resp))};
  }
  if (r.type == RecordType::array) {
    co_await media_read(t, r.length + 64, req.ctx);
    vos::VosContainer& cont = t.vos.container(r.cont);
    if (cfg_.payload == vos::PayloadMode::store) {
      resp.data = std::make_shared<std::vector<std::byte>>(r.length);
      resp.filled = cont.array_read(r.oid, r.dkey, r.akey, r.offset, *resp.data, r.epoch);
    } else {
      // Discard mode: report fill from extent metadata only.
      const std::uint64_t sz = cont.array_size(r.oid, r.dkey, r.akey, r.epoch);
      resp.filled = sz > r.offset ? std::min(r.length, sz - r.offset) : 0;
    }
    resp.exists = resp.filled > 0;
    reply_bytes = r.length;
  } else {
    // kv_get copies size/existence into `view` pre-suspension; the data span
    // points at the epoch record, which is immutable once written (VOS is
    // versioned: overwrites append at a new epoch, they never edit in place).
    auto view = t.vos.container(r.cont).kv_get(r.oid, r.dkey, r.akey, r.epoch);
    co_await media_read(t, view.size + 64, req.ctx);
    resp.exists = view.exists;
    if (view.exists) {
      resp.data = std::make_shared<std::vector<std::byte>>(view.data.begin(), view.data.end());
      resp.filled = view.size;
    }
    reply_bytes = view.size;
  }
  svc->record(sched_.now() - svc_t0);
  co_return Reply{Errno::ok, kObjRpcHeader + reply_bytes, Body::make(std::move(resp))};
}

sim::CoTask<net::Reply> Engine::on_enum_dkeys(net::Request req) {
  auto& r = req.body.get<ObjEnumReq>();
  Target& t = target_for(r.target);
  co_await dtx_read_barrier(t, r.cont, r.epoch);
  const sim::Time svc_t0 = sched_.now();
  telemetry::DurationHistogram* svc = svc_enter(t, "enum_dkeys");

  co_await xstream_exec(t, cfg_.enum_cpu, req.ctx);

  ObjEnumResp resp;
  resp.keys = t.vos.container(r.cont).list_dkeys(r.oid, r.epoch);
  std::uint64_t bytes = kObjRpcHeader;
  for (const auto& k : resp.keys) bytes += k.size() + 8;
  co_await media_read(t, bytes, req.ctx);
  svc->record(sched_.now() - svc_t0);
  co_return Reply{Errno::ok, bytes, Body::make(std::move(resp))};
}

sim::CoTask<net::Reply> Engine::on_enum_akeys(net::Request req) {
  auto& r = req.body.get<ObjEnumReq>();
  Target& t = target_for(r.target);
  co_await dtx_read_barrier(t, r.cont, r.epoch);
  const sim::Time svc_t0 = sched_.now();
  telemetry::DurationHistogram* svc = svc_enter(t, "enum_akeys");

  co_await xstream_exec(t, cfg_.enum_cpu, req.ctx);

  ObjEnumResp resp;
  resp.keys = t.vos.container(r.cont).list_akeys(r.oid, r.dkey, r.epoch);
  std::uint64_t bytes = kObjRpcHeader;
  for (const auto& k : resp.keys) bytes += k.size() + 8;
  co_await media_read(t, bytes, req.ctx);
  svc->record(sched_.now() - svc_t0);
  co_return Reply{Errno::ok, bytes, Body::make(std::move(resp))};
}

sim::CoTask<net::Reply> Engine::on_punch(net::Request req) {
  auto& r = req.body.get<ObjPunchReq>();
  Target& t = target_for(r.target);
  const sim::Time svc_t0 = sched_.now();
  telemetry::DurationHistogram* svc = svc_enter(t, "punch");

  co_await xstream_exec(t, cfg_.punch_cpu, req.ctx);
  co_await media_write(t, 64, req.ctx);

  auto& cont = t.vos.container(r.cont);
  cont.observe_time(vos::hlc_base(sched_.now()));
  const vos::Epoch epoch = cont.next_epoch();
  switch (r.scope) {
    case PunchScope::object: cont.punch_object(r.oid, epoch); break;
    case PunchScope::dkey: cont.punch_dkey(r.oid, r.dkey, epoch); break;
    case PunchScope::akey: cont.punch_akey(r.oid, r.dkey, r.akey, epoch); break;
  }
  svc->record(sched_.now() - svc_t0);
  co_return Reply{Errno::ok, kObjRpcHeader, {}};
}

sim::CoTask<net::Reply> Engine::on_query(net::Request req) {
  auto& r = req.body.get<ObjQueryReq>();
  Target& t = target_for(r.target);
  co_await dtx_read_barrier(t, r.cont, r.epoch);
  const sim::Time svc_t0 = sched_.now();
  telemetry::DurationHistogram* svc = svc_enter(t, "query");

  co_await xstream_exec(t, cfg_.fetch_cpu, req.ctx);
  co_await media_read(t, 64, req.ctx);

  ObjQueryResp resp;
  auto& cont = t.vos.container(r.cont);
  switch (r.kind) {
    case QueryKind::array_end_hint: resp.value = cont.array_end_hint(r.oid); break;
    case QueryKind::dkey_array_size:
      resp.value = cont.array_size(r.oid, r.dkey, r.akey, r.epoch);
      break;
  }
  svc->record(sched_.now() - svc_t0);
  co_return Reply{Errno::ok, kObjRpcHeader, Body::make(resp)};
}

}  // namespace daosim::engine
