// Wire protocol between the DAOS client library and engines: object I/O
// requests/replies and the pool-service client opcode. Bodies travel in
// net::Body (zero-copy), with wire sizes modelled explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "vos/types.hpp"

namespace daosim::engine {

// Object I/O opcodes (0x20 block; Raft uses 0x10, pool service 0x30).
constexpr std::uint16_t kOpObjUpdate = 0x20;
constexpr std::uint16_t kOpObjFetch = 0x21;
constexpr std::uint16_t kOpObjEnumDkeys = 0x22;
constexpr std::uint16_t kOpObjEnumAkeys = 0x23;
constexpr std::uint16_t kOpObjPunch = 0x24;
constexpr std::uint16_t kOpObjQuery = 0x25;
constexpr std::uint16_t kOpPoolSvc = 0x30;

/// Fixed per-message protocol overhead added to payload sizes.
constexpr std::uint64_t kObjRpcHeader = 256;

using Payload = std::shared_ptr<std::vector<std::byte>>;

enum class RecordType : std::uint8_t { array, single_value };

struct ObjUpdateReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;  // target index within the engine
  vos::Key dkey;
  vos::Key akey;
  RecordType type = RecordType::array;
  std::uint64_t offset = 0;  // array only
  std::uint64_t length = 0;  // logical bytes (payload may be null in discard mode)
  Payload data;              // null => metadata-only accounting
  std::uint64_t array_end_hint = 0;  // global array high-water mark (0 = none)
  /// Conditional dkey insert (DAOS_COND_DKEY_INSERT): fail with
  /// Errno::exists if the dkey already holds a visible record. Serialises
  /// concurrent create() races on directory entries.
  bool cond_insert = false;
};

struct ObjFetchReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  vos::Key dkey;
  vos::Key akey;
  RecordType type = RecordType::array;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  vos::Epoch epoch = vos::kEpochMax;
};

struct ObjFetchResp {
  bool exists = false;       // single-value: record present
  std::uint64_t filled = 0;  // array: bytes overlapping written data
  Payload data;              // null in discard mode
};

struct ObjEnumReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  vos::Key dkey;  // for akey enumeration
  vos::Epoch epoch = vos::kEpochMax;
};

struct ObjEnumResp {
  std::vector<vos::Key> keys;
};

enum class PunchScope : std::uint8_t { object, dkey, akey };

struct ObjPunchReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  PunchScope scope = PunchScope::object;
  vos::Key dkey;
  vos::Key akey;
};

enum class QueryKind : std::uint8_t { array_end_hint, dkey_array_size };

struct ObjQueryReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  QueryKind kind = QueryKind::array_end_hint;
  vos::Key dkey;
  vos::Key akey;
  vos::Epoch epoch = vos::kEpochMax;
};

struct ObjQueryResp {
  std::uint64_t value = 0;
};

/// Pool service client command: an opaque state-machine command string
/// submitted to the Raft leader co-located with the engine.
struct PoolSvcReq {
  std::string command;
};

struct PoolSvcResp {
  std::string response;                      // state machine output
  std::optional<net::NodeId> leader_hint{};  // when redirected
};

}  // namespace daosim::engine
