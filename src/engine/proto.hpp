// Wire protocol between the DAOS client library and engines: object I/O
// requests/replies and the pool-service client opcode. Bodies travel in
// net::Body (zero-copy), with wire sizes modelled explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "vos/dtx.hpp"
#include "vos/types.hpp"

namespace daosim::engine {

// Object I/O opcodes (0x20 block; Raft uses 0x10, pool service 0x30).
constexpr std::uint16_t kOpObjUpdate = 0x20;
constexpr std::uint16_t kOpObjFetch = 0x21;
constexpr std::uint16_t kOpObjEnumDkeys = 0x22;
constexpr std::uint16_t kOpObjEnumAkeys = 0x23;
constexpr std::uint16_t kOpObjPunch = 0x24;
constexpr std::uint16_t kOpObjQuery = 0x25;
constexpr std::uint16_t kOpPoolSvc = 0x30;

// Rebuild protocol opcodes (0x40 block): the pool-service leader drives
// surviving engines to scan for under-replicated groups and re-fan the lost
// replicas onto walk-forward targets.
constexpr std::uint16_t kOpRebuildScan = 0x40;
constexpr std::uint16_t kOpRebuildFetch = 0x41;
constexpr std::uint16_t kOpRebuildDone = 0x42;

// DTX protocol opcodes (0x50 block): client-coordinated two-phase commit
// over the participating shards, resolve queries for crash resync, and
// snapshot-floored container aggregation. Served by the engine-side
// DtxService (src/dtx).
constexpr std::uint16_t kOpTxPrepare = 0x50;
constexpr std::uint16_t kOpTxCommit = 0x51;
constexpr std::uint16_t kOpTxAbort = 0x52;
constexpr std::uint16_t kOpTxResolve = 0x53;
constexpr std::uint16_t kOpContAggregate = 0x54;

// SWIM + IV opcodes (0x60 block): engine-to-engine failure-detector probes
// (direct ping and indirect ping-req through a witness) and the incremental
// pool-map delta fetch every engine serves from its locally relayed delta
// log. Served by the engine-side SwimService (src/swim).
constexpr std::uint16_t kOpSwimPing = 0x60;
constexpr std::uint16_t kOpSwimPingReq = 0x61;
constexpr std::uint16_t kOpMapFetch = 0x62;

/// Fixed per-message protocol overhead added to payload sizes.
constexpr std::uint64_t kObjRpcHeader = 256;

/// Wire cost of each additional I/O descriptor in a batched (multi-extent)
/// object RPC: dkey + offset/length + checksum slot, as in a DAOS iod/sgl
/// entry. The first extent rides in the fixed header, so a single-extent
/// batch costs exactly what the unbatched protocol did.
constexpr std::uint64_t kExtentDescBytes = 32;

using Payload = std::shared_ptr<std::vector<std::byte>>;

enum class RecordType : std::uint8_t { array, single_value };

/// One extent of a batched (scatter-gather) array RPC. All extents of a
/// request share the object/akey and one payload buffer; `payload_off` is
/// this extent's offset into it.
struct IoExtent {
  vos::Key dkey;
  std::uint64_t offset = 0;       // offset within the dkey's array
  std::uint64_t length = 0;       // logical bytes
  std::uint64_t payload_off = 0;  // offset into the request/reply payload
};

/// Request wire bytes for an object RPC carrying `extents` descriptors and
/// `payload_bytes` of data (extents == 0 or 1 both mean "no extra
/// descriptors": the legacy single-extent encoding).
constexpr std::uint64_t obj_wire_bytes(std::size_t extents, std::uint64_t payload_bytes) {
  const std::uint64_t extra = extents > 1 ? std::uint64_t(extents - 1) * kExtentDescBytes : 0;
  return kObjRpcHeader + payload_bytes + extra;
}

struct ObjUpdateReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;  // target index within the engine
  vos::Key dkey;
  vos::Key akey;
  RecordType type = RecordType::array;
  std::uint64_t offset = 0;  // array only
  std::uint64_t length = 0;  // logical bytes (payload may be null in discard mode)
  Payload data;              // null => metadata-only accounting
  /// Batched (vectorized) encoding: when non-empty, the request carries
  /// these extents instead of the dkey/offset/length above, all applied to
  /// the same target in one service visit. `data` then holds every extent's
  /// bytes at its `payload_off`. Arrays only.
  std::vector<IoExtent> extents;
  std::uint64_t array_end_hint = 0;  // global array high-water mark (0 = none)
  /// Conditional dkey insert (DAOS_COND_DKEY_INSERT): fail with
  /// Errno::exists if the dkey already holds a visible record. Serialises
  /// concurrent create() races on directory entries.
  bool cond_insert = false;
};

struct ObjFetchReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  vos::Key dkey;
  vos::Key akey;
  RecordType type = RecordType::array;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  /// Batched encoding (see ObjUpdateReq::extents): when non-empty the fetch
  /// reads every extent in one service visit; the reply's payload holds each
  /// extent's bytes at its `payload_off` and `fills` reports per-extent
  /// overlap. Arrays only.
  std::vector<IoExtent> extents;
  vos::Epoch epoch = vos::kEpochMax;
};

struct ObjFetchResp {
  bool exists = false;       // single-value: record present
  std::uint64_t filled = 0;  // array: bytes overlapping written data (batched: total)
  Payload data;              // null in discard mode
  /// Batched fetch: bytes overlapping written data per request extent
  /// (parallel to ObjFetchReq::extents); empty for single-extent requests.
  std::vector<std::uint64_t> fills;
};

struct ObjEnumReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  vos::Key dkey;  // for akey enumeration
  vos::Epoch epoch = vos::kEpochMax;
};

struct ObjEnumResp {
  std::vector<vos::Key> keys;
};

enum class PunchScope : std::uint8_t { object, dkey, akey };

struct ObjPunchReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  PunchScope scope = PunchScope::object;
  vos::Key dkey;
  vos::Key akey;
};

enum class QueryKind : std::uint8_t { array_end_hint, dkey_array_size };

struct ObjQueryReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;
  QueryKind kind = QueryKind::array_end_hint;
  vos::Key dkey;
  vos::Key akey;
  vos::Epoch epoch = vos::kEpochMax;
};

struct ObjQueryResp {
  std::uint64_t value = 0;
};

/// One object whose redundancy group lost a replica: pull it from the
/// surviving source target and re-materialise it on the walk-forward
/// destination. `src`/`dst` are pool-map target indices.
struct RebuildEntry {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t group = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  vos::Epoch min_epoch = 0;  // resync: only records newer than this
  /// Apply semantics: eviction rebuild merges under data the destination
  /// already holds (its degraded-window writes are newer than the source
  /// image); a resync overwrites (the source's window writes are newer than
  /// the reintegrated replica's pre-eviction state).
  bool resync = false;
};

/// Leader -> engine. Two phases share the opcode: `assign == false` asks the
/// engine to scan its VOS trees and report entries it is the source for;
/// `assign == true` hands the engine the entries it is the destination for
/// (possibly none — it must still report rebuild_done).
struct RebuildScanReq {
  std::uint32_t version = 0;  // pool map version the task was created at
  bool assign = false;
  bool resync = false;              // reintegration resync (epoch diff) task
  net::NodeId reint_node = 0;       // resync: the engine coming back
  std::uint32_t since_version = 0;  // resync: map version of its eviction
  std::vector<net::NodeId> excluded;
  std::vector<RebuildEntry> entries;  // assign phase only
};

struct RebuildScanResp {
  std::vector<RebuildEntry> entries;
};

/// Destination engine -> source engine: pull one object's records for the
/// given redundancy group.
struct RebuildFetchReq {
  vos::Uuid cont;
  vos::ObjId oid;
  std::uint32_t target = 0;  // source target index within the engine
  std::uint32_t group = 0;
  vos::Epoch min_epoch = 0;
};

struct RebuildRecord {
  vos::Key dkey;
  vos::Key akey;
  RecordType type = RecordType::array;
  std::uint64_t length = 0;
  Payload data;  // null in discard mode
};

struct RebuildFetchResp {
  std::vector<RebuildRecord> records;
  std::uint64_t array_end = 0;  // source's array end hint for the object
  std::uint64_t bytes = 0;      // logical bytes transferred
};

/// Engine -> pool-service leader: all assigned entries for `version` landed.
/// Raft-committed so a leader crash mid-rebuild resumes instead of redoing.
struct RebuildDoneReq {
  net::NodeId engine = 0;
  std::uint32_t version = 0;
};

struct RebuildDoneResp {
  std::optional<net::NodeId> leader_hint{};
};

/// One staged write of a transaction, scoped to the receiving shard. Arrays
/// are pre-split into chunk pieces (dkey-relative offsets) by the client.
struct TxOpDesc {
  vos::ObjId oid;
  vos::Key dkey;
  vos::Key akey;
  RecordType type = RecordType::single_value;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t array_end_hint = 0;  // global array high-water mark (0 = none)
  Payload data;                      // null => metadata-only accounting
};

/// Phase 1: stage `ops` at `epoch` on the shard, locking the touched keys.
/// Errno::tx_restart on conflict (the loser restarts with a fresh epoch).
struct TxPrepareReq {
  vos::Uuid cont;
  std::uint64_t tx_client = 0;  // DtxId
  std::uint64_t tx_seq = 0;
  vos::Epoch epoch = 0;
  std::uint32_t target = 0;  // target index within the engine
  std::uint32_t leader = 0;  // pool-map index of the transaction's leader shard
  std::vector<TxOpDesc> ops;
};

/// Phase 2: commit (apply staged ops at the prepare epoch) or abort (drop
/// them). The coordinator sends commit to the leader shard FIRST — its
/// decision-table entry is the durable commit point — then fans out to the
/// other participants. Both opcodes share this body.
struct TxDecideReq {
  vos::Uuid cont;
  std::uint64_t tx_client = 0;
  std::uint64_t tx_seq = 0;
  std::uint32_t target = 0;
};

/// Resync query (participant -> leader shard): what happened to this
/// transaction? Unknown means the leader never saw or already decided and
/// pruned nothing — the asker keeps waiting for the reaper's verdict.
struct TxResolveReq {
  vos::Uuid cont;
  std::uint64_t tx_client = 0;
  std::uint64_t tx_seq = 0;
  std::uint32_t target = 0;
};

struct TxResolveResp {
  vos::DtxState state = vos::DtxState::unknown;
};

/// Client-driven container aggregation on one shard, with `upto` already
/// clamped below the pool's lowest snapshot epoch by the caller.
struct ContAggregateReq {
  vos::Uuid cont;
  std::uint32_t target = 0;
  vos::Epoch upto = 0;
};

/// Pool service client command: an opaque state-machine command string
/// submitted to the Raft leader co-located with the engine.
struct PoolSvcReq {
  std::string command;
};

struct PoolSvcResp {
  std::string response;                      // state machine output
  std::optional<net::NodeId> leader_hint{};  // when redirected
};

/// SWIM gossip: one member's state as known to the sender, piggybacked on
/// every probe and ack. `suspect` carries the suspicion (a member seeing
/// itself suspected refutes by bumping its incarnation).
struct SwimMemberUpdate {
  net::NodeId member = 0;
  std::uint64_t incarnation = 0;
  bool suspect = false;
};

/// Direct probe (kOpSwimPing). The piggyback rides both ways: the request
/// carries the prober's freshest updates, the ack the target's. `map_version`
/// is the sender's cached pool-map version — the IV dissemination signal
/// between engines (clients get the same signal via net::Reply::map_version).
struct SwimPingReq {
  net::NodeId from = 0;
  std::uint32_t map_version = 0;
  std::vector<SwimMemberUpdate> updates;
};

struct SwimPingResp {
  std::uint32_t map_version = 0;
  std::vector<SwimMemberUpdate> updates;
  /// Witness acks only: whether the indirect ping reached the subject.
  /// Always true on a direct ack.
  bool subject_acked = true;
};

/// Indirect probe (kOpSwimPingReq): prober -> witness, asking the witness to
/// ping `subject` on its behalf. The witness's ack relays the subject's
/// piggyback when the indirect ping succeeds.
struct SwimPingReqReq {
  net::NodeId from = 0;
  net::NodeId subject = 0;
  std::uint32_t map_version = 0;
  std::vector<SwimMemberUpdate> updates;
};

/// One committed pool-map membership change, as recorded in the pool
/// service's delta log: at `version` the engine became excluded (eviction)
/// or un-excluded (reintegration).
struct MapDeltaEntry {
  std::uint32_t version = 0;
  net::NodeId engine = 0;
  bool excluded = false;
};

/// IV delta fetch (kOpMapFetch): give me every membership change committed
/// after `since`. Any engine answers from its locally relayed delta log; the
/// pool-service roots answer from the Raft-replicated state machine.
struct MapFetchReq {
  std::uint32_t since = 0;
};

struct MapFetchResp {
  /// The responder's latest map version. May exceed the last delta's version:
  /// rebuild requeues bump the version without changing membership.
  std::uint32_t latest_version = 0;
  std::vector<MapDeltaEntry> deltas;
};

}  // namespace daosim::engine
