// The DAOS engine: one I/O server instance bound to one CPU socket (two per
// server node on NEXTGenIO). An engine owns a set of targets, each backed by
// a slice of the socket's DCPMM interleave set and served by one xstream.
//
// Request path for an update/fetch:
//   NIC (fabric, charged by RpcEndpoint) ->
//   target xstream (FIFO semaphore: per-op CPU cost, shard-cache warmup) ->
//   media (per-target slice AND shared socket pipe, concurrently) ->
//   VOS apply -> reply.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "engine/proto.hpp"
#include "media/dcpmm.hpp"
#include "net/rpc.hpp"
#include "sim/sync.hpp"
#include "telemetry/telemetry.hpp"
#include "vos/target.hpp"

namespace daosim::engine {

struct EngineConfig {
  std::uint32_t targets = 8;
  sim::Time update_cpu = 9 * sim::kUs;  // per-RPC server CPU (checksums, tree ops)
  sim::Time fetch_cpu = 6 * sim::kUs;
  /// Marginal CPU per additional extent in a batched (multi-extent) RPC:
  /// the per-descriptor checksum/tree work that batching cannot amortize.
  /// A k-extent update costs update_cpu + (k-1)*update_cpu_extent, so a
  /// 1-extent batch costs exactly what the unbatched path did.
  sim::Time update_cpu_extent = 2 * sim::kUs;
  sim::Time fetch_cpu_extent = 1 * sim::kUs;
  sim::Time enum_cpu = 12 * sim::kUs;
  sim::Time punch_cpu = 8 * sim::kUs;
  /// Per-target sustained throughput (xstream service + its share of the
  /// DIMM channels). Deliberately far below a proportional slice of the raw
  /// interleave set: the per-target xstream software path dominates, as in
  /// production DAOS.
  double target_read_bw = 2.6e9;
  double target_write_bw = 1.8e9;
  /// Stream-locality model: each target keeps hot state (VOS tree path,
  /// media write-combining / prefetch context) for this many distinct
  /// objects. I/O to an object outside the set pays a stream-switch cost.
  /// This is what separates the object classes in the paper's figures:
  /// file-per-process SX scatters every file over every target (constant
  /// switching) while S1/S2 files and any single shared file stream warmly.
  std::uint32_t stream_contexts = 3;
  sim::Time stream_switch_read = 1300 * sim::kUs;
  sim::Time stream_switch_write = 600 * sim::kUs;
  vos::PayloadMode payload = vos::PayloadMode::store;
};

class Engine {
 public:
  /// @param media  the socket's DCPMM interleave set (shared by this engine's
  ///               targets; the sibling engine on the other socket has its own)
  Engine(net::RpcDomain& domain, net::NodeId node, media::DcpmmInterleaveSet& media,
         EngineConfig cfg);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  net::NodeId node() const { return ep_.node(); }
  net::RpcEndpoint& endpoint() { return ep_; }
  std::uint32_t target_count() const { return std::uint32_t(targets_.size()); }
  const EngineConfig& config() const { return cfg_; }

  vos::VosTarget& vos_target(std::uint32_t idx) { return targets_[idx]->vos; }

  /// Fault injection: wedges target `idx`'s xstream for `duration` of virtual
  /// time (a GC stall / PMDK flush storm). Requests queue behind the stall in
  /// FIFO order and drain when it ends — nothing is lost, only delayed.
  void stall_target(std::uint32_t idx, sim::Time duration);

  /// Rebuild traffic: charges the target's xstream and media bandwidth like a
  /// foreground fetch/update, so rebuild transfers share the pipes with
  /// application I/O instead of teleporting data. `ctx` links the work into
  /// the rebuild task's trace tree.
  sim::CoTask<void> rebuild_read(std::uint32_t idx, std::uint64_t bytes,
                                 sim::TraceContext ctx = {});
  sim::CoTask<void> rebuild_write(std::uint32_t idx, std::uint64_t bytes,
                                  sim::TraceContext ctx = {});

  std::uint64_t updates_served() const { return updates_; }
  std::uint64_t fetches_served() const { return fetches_; }
  std::uint64_t shard_cache_misses() const { return cache_misses_; }  // stream-context misses

  /// The engine's cached pool-map version, stamped on every reply this
  /// endpoint serves (the IV piggyback — see docs/membership.md). Starts at
  /// 1, the version of the map handed out at connect; the SwimService
  /// advances it as deltas disseminate. With SWIM off it never moves, so
  /// clients see no staleness signal and legacy behavior is unchanged.
  std::uint32_t cached_map_version() const { return cached_map_version_; }
  void set_cached_map_version(std::uint32_t v) { cached_map_version_ = v; }

  /// This engine's metric tree ("engine/<node>"): per-opcode service-time
  /// histograms, per-target queue-depth stat gauges, VOS index probes, plus
  /// the endpoint's RPC metrics. The rebuild service hangs its counters
  /// here too.
  telemetry::Registry& telemetry() { return metrics_; }
  const telemetry::Registry& telemetry() const { return metrics_; }

 private:
  struct Target {
    Target(sim::Scheduler& s, vos::PayloadMode mode, double read_bw, double write_bw)
        : vos(mode), xstream(s, 1), read_slice(s, read_bw), write_slice(s, write_bw) {}
    vos::VosTarget vos;
    sim::Semaphore xstream;  // one service stream per target
    sim::SharedBandwidth read_slice;
    sim::SharedBandwidth write_slice;
    std::deque<std::pair<vos::Uuid, vos::ObjId>> stream_lru;  // hot object streams
    std::uint32_t idx = 0;
    telemetry::StatGauge* queue_depth = nullptr;
  };

  sim::CoTask<net::Reply> on_update(net::Request req);
  sim::CoTask<net::Reply> on_fetch(net::Request req);
  sim::CoTask<net::Reply> on_enum_dkeys(net::Request req);
  sim::CoTask<net::Reply> on_enum_akeys(net::Request req);
  sim::CoTask<net::Reply> on_punch(net::Request req);
  sim::CoTask<net::Reply> on_query(net::Request req);

  Target& target_for(std::uint32_t idx);
  /// Snapshot-stable reads: an epoch-bounded read parks until every prepared
  /// transaction that could still commit at or below `epoch` has settled.
  /// Plain reads (kEpochMax) never wait.
  sim::CoTask<void> dtx_read_barrier(Target& t, vos::Uuid cont, vos::Epoch epoch);
  /// Checks/updates the target's stream-context set; returns the switch cost.
  sim::Time stream_context_touch(Target& t, vos::Uuid cont, vos::ObjId oid, bool write);
  sim::CoTask<void> media_write(Target& t, std::uint64_t bytes, sim::TraceContext ctx = {});
  sim::CoTask<void> media_read(Target& t, std::uint64_t bytes, sim::TraceContext ctx = {});
  /// Queue on the target's xstream, then charge `cpu` of service time.
  /// Emits a "queue" span for the wait and a "vos" span for the CPU burn
  /// (tree descent, checksums), both children of `ctx`.
  sim::CoTask<void> xstream_exec(Target& t, sim::Time cpu, sim::TraceContext ctx);

  /// Samples the target's queue depth and returns the service-time histogram
  /// for `op` — called at handler entry; the handler records at exit.
  telemetry::DurationHistogram* svc_enter(Target& t, const char* op);

  net::RpcEndpoint ep_;
  sim::Scheduler& sched_;
  media::DcpmmInterleaveSet& media_;
  EngineConfig cfg_;
  telemetry::Registry metrics_;
  /// Extents per object RPC (1 for unbatched/KV), as histograms so the
  /// batching ablations can read the whole distribution.
  telemetry::DurationHistogram* update_extents_ = nullptr;
  telemetry::DurationHistogram* fetch_extents_ = nullptr;
  std::vector<std::unique_ptr<Target>> targets_;
  std::uint64_t updates_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint32_t cached_map_version_ = 1;
};

}  // namespace daosim::engine
