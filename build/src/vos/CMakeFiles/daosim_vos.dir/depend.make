# Empty dependencies file for daosim_vos.
# This may be replaced when dependencies are built.
