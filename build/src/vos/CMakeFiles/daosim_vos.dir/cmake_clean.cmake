file(REMOVE_RECURSE
  "CMakeFiles/daosim_vos.dir/container.cpp.o"
  "CMakeFiles/daosim_vos.dir/container.cpp.o.d"
  "CMakeFiles/daosim_vos.dir/value_store.cpp.o"
  "CMakeFiles/daosim_vos.dir/value_store.cpp.o.d"
  "libdaosim_vos.a"
  "libdaosim_vos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_vos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
