file(REMOVE_RECURSE
  "libdaosim_vos.a"
)
