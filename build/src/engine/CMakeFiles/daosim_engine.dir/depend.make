# Empty dependencies file for daosim_engine.
# This may be replaced when dependencies are built.
