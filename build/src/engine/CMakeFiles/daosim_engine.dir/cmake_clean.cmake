file(REMOVE_RECURSE
  "CMakeFiles/daosim_engine.dir/engine.cpp.o"
  "CMakeFiles/daosim_engine.dir/engine.cpp.o.d"
  "libdaosim_engine.a"
  "libdaosim_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
