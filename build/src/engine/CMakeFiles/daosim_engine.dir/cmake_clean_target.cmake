file(REMOVE_RECURSE
  "libdaosim_engine.a"
)
