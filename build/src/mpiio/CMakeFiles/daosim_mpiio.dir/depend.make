# Empty dependencies file for daosim_mpiio.
# This may be replaced when dependencies are built.
