file(REMOVE_RECURSE
  "libdaosim_mpiio.a"
)
