file(REMOVE_RECURSE
  "CMakeFiles/daosim_mpiio.dir/mpiio.cpp.o"
  "CMakeFiles/daosim_mpiio.dir/mpiio.cpp.o.d"
  "libdaosim_mpiio.a"
  "libdaosim_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
