# Empty dependencies file for daosim_cluster.
# This may be replaced when dependencies are built.
