file(REMOVE_RECURSE
  "CMakeFiles/daosim_cluster.dir/testbed.cpp.o"
  "CMakeFiles/daosim_cluster.dir/testbed.cpp.o.d"
  "libdaosim_cluster.a"
  "libdaosim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
