file(REMOVE_RECURSE
  "libdaosim_cluster.a"
)
