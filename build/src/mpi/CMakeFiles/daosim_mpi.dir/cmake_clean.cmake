file(REMOVE_RECURSE
  "CMakeFiles/daosim_mpi.dir/mpi.cpp.o"
  "CMakeFiles/daosim_mpi.dir/mpi.cpp.o.d"
  "libdaosim_mpi.a"
  "libdaosim_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
