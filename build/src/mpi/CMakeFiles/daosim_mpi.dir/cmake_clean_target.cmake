file(REMOVE_RECURSE
  "libdaosim_mpi.a"
)
