# Empty compiler generated dependencies file for daosim_mpi.
# This may be replaced when dependencies are built.
