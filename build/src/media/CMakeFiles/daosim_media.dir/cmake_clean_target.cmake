file(REMOVE_RECURSE
  "libdaosim_media.a"
)
