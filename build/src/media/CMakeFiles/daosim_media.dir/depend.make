# Empty dependencies file for daosim_media.
# This may be replaced when dependencies are built.
