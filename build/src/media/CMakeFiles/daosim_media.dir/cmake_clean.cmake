file(REMOVE_RECURSE
  "CMakeFiles/daosim_media.dir/dcpmm.cpp.o"
  "CMakeFiles/daosim_media.dir/dcpmm.cpp.o.d"
  "libdaosim_media.a"
  "libdaosim_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
