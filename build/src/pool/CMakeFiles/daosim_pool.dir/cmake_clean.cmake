file(REMOVE_RECURSE
  "CMakeFiles/daosim_pool.dir/pool_service.cpp.o"
  "CMakeFiles/daosim_pool.dir/pool_service.cpp.o.d"
  "libdaosim_pool.a"
  "libdaosim_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
