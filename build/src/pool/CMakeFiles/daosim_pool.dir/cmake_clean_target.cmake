file(REMOVE_RECURSE
  "libdaosim_pool.a"
)
