# Empty compiler generated dependencies file for daosim_pool.
# This may be replaced when dependencies are built.
