file(REMOVE_RECURSE
  "libdaosim_raft.a"
)
