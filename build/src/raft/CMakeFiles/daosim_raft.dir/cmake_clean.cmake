file(REMOVE_RECURSE
  "CMakeFiles/daosim_raft.dir/raft.cpp.o"
  "CMakeFiles/daosim_raft.dir/raft.cpp.o.d"
  "libdaosim_raft.a"
  "libdaosim_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
