# Empty dependencies file for daosim_raft.
# This may be replaced when dependencies are built.
