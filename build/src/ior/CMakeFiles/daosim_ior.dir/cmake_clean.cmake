file(REMOVE_RECURSE
  "CMakeFiles/daosim_ior.dir/ior.cpp.o"
  "CMakeFiles/daosim_ior.dir/ior.cpp.o.d"
  "libdaosim_ior.a"
  "libdaosim_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
