file(REMOVE_RECURSE
  "libdaosim_ior.a"
)
