# Empty compiler generated dependencies file for daosim_ior.
# This may be replaced when dependencies are built.
