# Empty dependencies file for daosim_dfs.
# This may be replaced when dependencies are built.
