file(REMOVE_RECURSE
  "CMakeFiles/daosim_dfs.dir/dfs.cpp.o"
  "CMakeFiles/daosim_dfs.dir/dfs.cpp.o.d"
  "libdaosim_dfs.a"
  "libdaosim_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
