file(REMOVE_RECURSE
  "libdaosim_dfs.a"
)
