# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("media")
subdirs("raft")
subdirs("vos")
subdirs("engine")
subdirs("pool")
subdirs("client")
subdirs("dfs")
subdirs("posix")
subdirs("mpi")
subdirs("mpiio")
subdirs("h5")
subdirs("ior")
subdirs("cluster")
