file(REMOVE_RECURSE
  "CMakeFiles/daosim_posix.dir/dfuse.cpp.o"
  "CMakeFiles/daosim_posix.dir/dfuse.cpp.o.d"
  "CMakeFiles/daosim_posix.dir/vfs.cpp.o"
  "CMakeFiles/daosim_posix.dir/vfs.cpp.o.d"
  "libdaosim_posix.a"
  "libdaosim_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
