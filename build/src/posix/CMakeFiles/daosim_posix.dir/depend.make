# Empty dependencies file for daosim_posix.
# This may be replaced when dependencies are built.
