file(REMOVE_RECURSE
  "libdaosim_posix.a"
)
