# Empty compiler generated dependencies file for daosim_h5.
# This may be replaced when dependencies are built.
