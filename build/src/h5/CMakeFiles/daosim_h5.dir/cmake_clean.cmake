file(REMOVE_RECURSE
  "CMakeFiles/daosim_h5.dir/h5lite.cpp.o"
  "CMakeFiles/daosim_h5.dir/h5lite.cpp.o.d"
  "libdaosim_h5.a"
  "libdaosim_h5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_h5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
