file(REMOVE_RECURSE
  "libdaosim_h5.a"
)
