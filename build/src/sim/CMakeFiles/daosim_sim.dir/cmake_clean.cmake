file(REMOVE_RECURSE
  "CMakeFiles/daosim_sim.dir/bandwidth.cpp.o"
  "CMakeFiles/daosim_sim.dir/bandwidth.cpp.o.d"
  "CMakeFiles/daosim_sim.dir/scheduler.cpp.o"
  "CMakeFiles/daosim_sim.dir/scheduler.cpp.o.d"
  "libdaosim_sim.a"
  "libdaosim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
