# Empty dependencies file for daosim_sim.
# This may be replaced when dependencies are built.
