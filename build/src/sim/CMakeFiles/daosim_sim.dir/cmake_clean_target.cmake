file(REMOVE_RECURSE
  "libdaosim_sim.a"
)
