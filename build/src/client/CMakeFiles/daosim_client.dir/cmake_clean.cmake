file(REMOVE_RECURSE
  "CMakeFiles/daosim_client.dir/client.cpp.o"
  "CMakeFiles/daosim_client.dir/client.cpp.o.d"
  "libdaosim_client.a"
  "libdaosim_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
