# Empty compiler generated dependencies file for daosim_client.
# This may be replaced when dependencies are built.
