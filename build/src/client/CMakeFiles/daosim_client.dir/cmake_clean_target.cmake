file(REMOVE_RECURSE
  "libdaosim_client.a"
)
