file(REMOVE_RECURSE
  "libdaosim_net.a"
)
