file(REMOVE_RECURSE
  "CMakeFiles/daosim_net.dir/fabric.cpp.o"
  "CMakeFiles/daosim_net.dir/fabric.cpp.o.d"
  "CMakeFiles/daosim_net.dir/rpc.cpp.o"
  "CMakeFiles/daosim_net.dir/rpc.cpp.o.d"
  "libdaosim_net.a"
  "libdaosim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
