# Empty dependencies file for daosim_net.
# This may be replaced when dependencies are built.
