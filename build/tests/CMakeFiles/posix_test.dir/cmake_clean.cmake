file(REMOVE_RECURSE
  "CMakeFiles/posix_test.dir/posix_test.cpp.o"
  "CMakeFiles/posix_test.dir/posix_test.cpp.o.d"
  "posix_test"
  "posix_test.pdb"
  "posix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
