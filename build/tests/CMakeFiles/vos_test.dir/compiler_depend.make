# Empty compiler generated dependencies file for vos_test.
# This may be replaced when dependencies are built.
