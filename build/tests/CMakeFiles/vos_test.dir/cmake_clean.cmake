file(REMOVE_RECURSE
  "CMakeFiles/vos_test.dir/vos_test.cpp.o"
  "CMakeFiles/vos_test.dir/vos_test.cpp.o.d"
  "vos_test"
  "vos_test.pdb"
  "vos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
