file(REMOVE_RECURSE
  "CMakeFiles/h5_test.dir/h5_test.cpp.o"
  "CMakeFiles/h5_test.dir/h5_test.cpp.o.d"
  "h5_test"
  "h5_test.pdb"
  "h5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
