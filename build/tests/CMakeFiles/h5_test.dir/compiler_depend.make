# Empty compiler generated dependencies file for h5_test.
# This may be replaced when dependencies are built.
