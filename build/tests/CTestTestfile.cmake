# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/vos_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/posix_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/mpiio_test[1]_include.cmake")
include("/root/repo/build/tests/h5_test[1]_include.cmake")
include("/root/repo/build/tests/ior_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
