
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/checkpoint_restart.cpp" "examples/CMakeFiles/checkpoint_restart.dir/checkpoint_restart.cpp.o" "gcc" "examples/CMakeFiles/checkpoint_restart.dir/checkpoint_restart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ior/CMakeFiles/daosim_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/daosim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/daosim_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/daosim_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/h5/CMakeFiles/daosim_h5.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/daosim_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/daosim_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/daosim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/daosim_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/daosim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/daosim_media.dir/DependInfo.cmake"
  "/root/repo/build/src/vos/CMakeFiles/daosim_vos.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/daosim_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/daosim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/daosim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
