# Empty compiler generated dependencies file for weather_fields.
# This may be replaced when dependencies are built.
