file(REMOVE_RECURSE
  "CMakeFiles/weather_fields.dir/weather_fields.cpp.o"
  "CMakeFiles/weather_fields.dir/weather_fields.cpp.o.d"
  "weather_fields"
  "weather_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
