# Empty compiler generated dependencies file for ior_cli.
# This may be replaced when dependencies are built.
