file(REMOVE_RECURSE
  "CMakeFiles/ior_cli.dir/ior_cli.cpp.o"
  "CMakeFiles/ior_cli.dir/ior_cli.cpp.o.d"
  "ior_cli"
  "ior_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ior_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
