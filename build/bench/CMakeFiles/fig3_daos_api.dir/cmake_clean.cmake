file(REMOVE_RECURSE
  "CMakeFiles/fig3_daos_api.dir/fig3_daos_api.cpp.o"
  "CMakeFiles/fig3_daos_api.dir/fig3_daos_api.cpp.o.d"
  "fig3_daos_api"
  "fig3_daos_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_daos_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
