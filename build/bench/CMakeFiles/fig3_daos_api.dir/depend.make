# Empty dependencies file for fig3_daos_api.
# This may be replaced when dependencies are built.
