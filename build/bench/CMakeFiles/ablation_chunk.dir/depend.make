# Empty dependencies file for ablation_chunk.
# This may be replaced when dependencies are built.
