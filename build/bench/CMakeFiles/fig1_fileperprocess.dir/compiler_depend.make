# Empty compiler generated dependencies file for fig1_fileperprocess.
# This may be replaced when dependencies are built.
