file(REMOVE_RECURSE
  "CMakeFiles/fig1_fileperprocess.dir/fig1_fileperprocess.cpp.o"
  "CMakeFiles/fig1_fileperprocess.dir/fig1_fileperprocess.cpp.o.d"
  "fig1_fileperprocess"
  "fig1_fileperprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fileperprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
