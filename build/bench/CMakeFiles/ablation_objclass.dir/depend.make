# Empty dependencies file for ablation_objclass.
# This may be replaced when dependencies are built.
