file(REMOVE_RECURSE
  "CMakeFiles/ablation_objclass.dir/ablation_objclass.cpp.o"
  "CMakeFiles/ablation_objclass.dir/ablation_objclass.cpp.o.d"
  "ablation_objclass"
  "ablation_objclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_objclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
