# Empty compiler generated dependencies file for fig2_sharedfile.
# This may be replaced when dependencies are built.
