file(REMOVE_RECURSE
  "CMakeFiles/fig2_sharedfile.dir/fig2_sharedfile.cpp.o"
  "CMakeFiles/fig2_sharedfile.dir/fig2_sharedfile.cpp.o.d"
  "fig2_sharedfile"
  "fig2_sharedfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sharedfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
