# Empty dependencies file for ablation_dfuse.
# This may be replaced when dependencies are built.
