file(REMOVE_RECURSE
  "CMakeFiles/ablation_dfuse.dir/ablation_dfuse.cpp.o"
  "CMakeFiles/ablation_dfuse.dir/ablation_dfuse.cpp.o.d"
  "ablation_dfuse"
  "ablation_dfuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dfuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
